// Package mem simulates the memory of a 64-bit Linux process: a sparse
// page-granular address space organized into virtual memory areas (VMAs) for
// text, data, heap, mmap arena and stack, with a brk/mmap-style heap
// allocator and Linux's stack auto-extension semantics.
//
// The package is the single source of truth for "would this access fault?":
// both the interpreter (ground truth for fault-injection experiments) and
// the ePVF crash model (the prediction) call Resolve on the same VMA
// tables, mirroring how the paper's crash model encodes the Linux kernel's
// do_page_fault/expand_stack logic (DSN'16 §III-D, Fig. 4).
package mem

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// StackGuardGap is the window below the stack pointer within which Linux
// treats an access under the stack VMA as a legal stack-extension access:
// 64 KiB for a maximal x86 string instruction plus 128 bytes of red zone
// (the "ESP - 65536 - 128" rule in the paper's Algorithm 3).
const StackGuardGap = 65536 + 128

// Perm is a VMA permission bit set.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders the permissions /proc/self/maps style.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// SegKind classifies a VMA.
type SegKind int

// Segment kinds. Enums start at one.
const (
	SegText SegKind = iota + 1
	SegROData
	SegData
	SegHeap
	SegMmap
	SegStack
)

var segNames = map[SegKind]string{
	SegText: "text", SegROData: "rodata", SegData: "data",
	SegHeap: "heap", SegMmap: "mmap", SegStack: "stack",
}

// String returns the segment name.
func (k SegKind) String() string {
	if s, ok := segNames[k]; ok {
		return s
	}
	return fmt.Sprintf("seg(%d)", int(k))
}

// VMA is one virtual memory area: the half-open byte range [Start, End).
type VMA struct {
	Start, End uint64
	Perm       Perm
	Kind       SegKind
}

// Contains reports whether addr falls inside the VMA.
func (v VMA) Contains(addr uint64) bool { return addr >= v.Start && addr < v.End }

// String renders the VMA /proc/self/maps style.
func (v VMA) String() string {
	return fmt.Sprintf("%012x-%012x %s [%s]", v.Start, v.End, v.Perm, v.Kind)
}

// Layout fixes the base addresses of the simulated process image. All
// fields are page-aligned.
type Layout struct {
	TextBase   uint64
	RODataBase uint64
	DataBase   uint64
	HeapBase   uint64
	MmapBase   uint64
	StackTop   uint64
	// StackRLimit is the maximum stack size (RLIMIT_STACK), 8 MiB by
	// default.
	StackRLimit uint64
	// InitialStackPages is how many pages of stack are mapped at startup.
	InitialStackPages int
}

// DefaultLayout returns the canonical x86-64 Linux-like layout used
// throughout the experiments.
func DefaultLayout() Layout {
	return Layout{
		TextBase:          0x0000_0040_0000,
		RODataBase:        0x0000_0060_0000,
		DataBase:          0x0000_0070_0000,
		HeapBase:          0x0000_0090_0000,
		MmapBase:          0x7f00_0000_0000,
		StackTop:          0x7fff_ffde_0000,
		StackRLimit:       8 << 20,
		InitialStackPages: 4,
	}
}

// Jitter returns a copy of the layout with the heap base, mmap base and
// stack top independently shifted by a random page-aligned offset in
// [0, window). This models the run-to-run segment-boundary drift (ASLR,
// allocator nondeterminism) that the paper identifies as the cause of its
// recall/precision gap (§IV-B): the ePVF model profiles one layout while
// fault-injection runs execute under another.
func (l Layout) Jitter(rng *rand.Rand, window uint64) Layout {
	if window == 0 {
		return l
	}
	pages := window / PageSize
	if pages == 0 {
		pages = 1
	}
	shift := func() uint64 { return uint64(rng.Int63n(int64(pages))) * PageSize }
	j := l
	j.HeapBase += shift()
	j.MmapBase += shift()
	j.StackTop -= shift()
	return j
}

// AccessError reports an access that the simulated MMU rejects. It is
// translated by the interpreter into the SIGSEGV exception.
type AccessError struct {
	Addr  uint64
	Size  int64
	Write bool
	// Reason is a short human-readable cause ("unmapped", "below stack
	// guard", "write to read-only", "stack rlimit").
	Reason string
}

// Error implements error.
func (e *AccessError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("segmentation fault: %s of %d bytes at %#x (%s)", op, e.Size, e.Addr, e.Reason)
}

// page is one refcounted copy-on-write page. refs counts the address
// spaces referencing it; a write through an address space that is not the
// sole owner first copies the page (write-fault semantics). An absent page
// reads as zeroes, so an all-zero page and a missing page are
// indistinguishable to programs.
type page struct {
	refs atomic.Int32
	data [PageSize]byte
}

func newPage() *page {
	p := &page{}
	p.refs.Store(1)
	return p
}

// AddressSpace is a simulated process address space.
type AddressSpace struct {
	layout Layout
	vmas   []VMA // sorted by Start, non-overlapping
	pages  map[uint64]*page

	sp       uint64 // current stack pointer
	brk      uint64 // current heap break (end of heap VMA)
	mmapNext uint64

	allocs map[uint64]uint64 // malloc'd block start -> size

	// version increments whenever the VMA table changes; trace records it
	// so the crash model can replay the exact segment boundaries seen at
	// each access.
	version   int
	snapshots map[int][]VMA

	// dirtied counts pages made privately writable in this address space:
	// fresh page materializations plus copy-on-write faults. Forks start
	// at zero, so the delta between two points is the snapshot "dirty
	// page" cost.
	dirtied int64

	// One-entry VMA-bounds caches for the LoadFast/StoreFast hot path.
	// Each caches the [lo, hi) of the VMA that satisfied the most recent
	// fast access, tagged with the version that made it valid; any VMA
	// table change bumps version and so invalidates both. VMAs only ever
	// grow or get appended (Free keeps mmap segments mapped), so a cached
	// range at the current version can never cover unmapped addresses.
	// The zero value is invalid (hi == 0 admits no address), which is why
	// Fork need not copy these.
	fastRLo, fastRHi uint64
	fastRVer         int
	fastWLo, fastWHi uint64
	fastWVer         int
}

// New creates an address space with the given layout and reserves the text,
// read-only data, data, heap and stack VMAs. textSize and dataSize are
// rounded up to whole pages.
func New(l Layout) *AddressSpace {
	as := &AddressSpace{
		layout:    l,
		pages:     make(map[uint64]*page),
		allocs:    make(map[uint64]uint64),
		mmapNext:  l.MmapBase,
		snapshots: make(map[int][]VMA),
	}
	stackStart := l.StackTop - uint64(l.InitialStackPages)*PageSize
	as.vmas = []VMA{
		{Start: l.TextBase, End: l.TextBase + 16*PageSize, Perm: PermRead | PermExec, Kind: SegText},
		{Start: l.RODataBase, End: l.RODataBase + 16*PageSize, Perm: PermRead, Kind: SegROData},
		{Start: l.DataBase, End: l.DataBase + 16*PageSize, Perm: PermRead | PermWrite, Kind: SegData},
		{Start: l.HeapBase, End: l.HeapBase, Perm: PermRead | PermWrite, Kind: SegHeap},
		{Start: stackStart, End: l.StackTop, Perm: PermRead | PermWrite, Kind: SegStack},
	}
	as.sp = l.StackTop - 16 // small bias like the kernel's initial frame
	as.brk = l.HeapBase
	as.bump()
	return as
}

// Layout returns the layout the address space was created with.
func (as *AddressSpace) Layout() Layout { return as.layout }

func (as *AddressSpace) bump() {
	as.version++
	cp := make([]VMA, len(as.vmas))
	copy(cp, as.vmas)
	as.snapshots[as.version] = cp
}

// Version returns the current VMA-table version.
func (as *AddressSpace) Version() int { return as.version }

// SnapshotAt returns the VMA table as of the given version. The returned
// slice must not be modified.
func (as *AddressSpace) SnapshotAt(version int) []VMA { return as.snapshots[version] }

// Snapshots returns the full version -> VMA-table history of the address
// space. The returned map and slices must not be modified.
func (as *AddressSpace) Snapshots() map[int][]VMA { return as.snapshots }

// EnsureSegmentSize grows the VMA of the given kind to hold at least size
// bytes from its start, rounding up to whole pages. Used by the program
// loader to fit globals into the data segments.
func (as *AddressSpace) EnsureSegmentSize(kind SegKind, size uint64) {
	end := uint64(0)
	for i := range as.vmas {
		if as.vmas[i].Kind == kind {
			end = as.vmas[i].Start + (size+PageSize-1)&^(PageSize-1)
			if end > as.vmas[i].End {
				as.vmas[i].End = end
				if kind == SegHeap && end > as.brk {
					as.brk = end
				}
				as.bump()
			}
			return
		}
	}
}

// VMAs returns a copy of the current VMA table.
func (as *AddressSpace) VMAs() []VMA {
	cp := make([]VMA, len(as.vmas))
	copy(cp, as.vmas)
	return cp
}

// SP returns the current simulated stack pointer.
func (as *AddressSpace) SP() uint64 { return as.sp }

// SetSP sets the simulated stack pointer (used when entering/leaving
// frames).
func (as *AddressSpace) SetSP(sp uint64) { as.sp = sp }

func (as *AddressSpace) findVMA(addr uint64) (int, bool) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > addr })
	if i < len(as.vmas) && as.vmas[i].Contains(addr) {
		return i, true
	}
	return i, false
}

// stackVMA returns the index of the stack VMA.
func (as *AddressSpace) stackVMA() int {
	for i := range as.vmas {
		if as.vmas[i].Kind == SegStack {
			return i
		}
	}
	return -1
}

// Resolve decides whether an access to addr is legal under a given VMA
// table and stack pointer, applying Linux's stack-extension rule when
// stackRule is true: an access below the stack VMA is still legal when it is
// no lower than sp - StackGuardGap and the resulting stack stays within
// rlimit. It returns the valid address range [lo, hi) that governs addr —
// the range the propagation model turns into crash-bit ranges — and whether
// the access itself is legal.
//
// Resolve is a pure function of its arguments so the crash model can call it
// on recorded snapshots without touching a live address space.
func Resolve(vmas []VMA, sp uint64, stackTop, stackRLimit uint64, addr uint64, write, stackRule bool) (lo, hi uint64, ok bool) {
	floor := stackTop - stackRLimit
	// stackLo is the lowest address a stack-governed access may touch: the
	// guard window below SP, clamped by the rlimit (paper Alg. 3 lines
	// 6-9). Without the stack rule the naive model allows only the mapped
	// VMA itself.
	stackLo := func(vmaStart uint64) uint64 {
		if !stackRule {
			return vmaStart
		}
		lo := floor
		if guard := sp - StackGuardGap; guard > lo {
			lo = guard
		}
		if vmaStart < lo {
			// Already-mapped pages below the guard never fault.
			lo = vmaStart
		}
		return lo
	}
	var stack *VMA
	for i := range vmas {
		v := &vmas[i]
		if v.Kind == SegStack {
			stack = v
		}
		if v.Contains(addr) {
			if write && v.Perm&PermWrite == 0 {
				return v.Start, v.End, false
			}
			if v.Kind == SegStack {
				return stackLo(v.Start), v.End, true
			}
			return v.Start, v.End, true
		}
	}
	// Not inside any VMA. The only rescue is the growable stack.
	if stack != nil && addr < stack.Start {
		lo := stackLo(stack.Start)
		if stackRule && addr >= lo {
			return lo, stack.End, true
		}
		return lo, stack.End, false
	}
	return 0, 0, false
}

// ValidRange returns the [lo, hi) range of addresses around addr that would
// not fault, given a VMA snapshot and stack pointer. For an addr governed by
// the stack it accounts for the extension rule. ok is false when addr
// itself would fault.
func (as *AddressSpace) ValidRange(addr uint64, write bool) (lo, hi uint64, ok bool) {
	return Resolve(as.vmas, as.sp, as.layout.StackTop, as.layout.StackRLimit, addr, write, true)
}

// CheckAccess validates an access of size bytes at addr, growing the stack
// if Linux would. It returns nil when legal and an *AccessError otherwise.
func (as *AddressSpace) CheckAccess(addr uint64, size int64, write bool) error {
	if size <= 0 {
		size = 1
	}
	last := addr + uint64(size) - 1
	for _, a := range []uint64{addr, last} {
		if err := as.checkOne(a, size, write); err != nil {
			return err
		}
	}
	return nil
}

func (as *AddressSpace) checkOne(addr uint64, size int64, write bool) error {
	if i, ok := as.findVMA(addr); ok {
		if write && as.vmas[i].Perm&PermWrite == 0 {
			return &AccessError{Addr: addr, Size: size, Write: write, Reason: "write to read-only"}
		}
		return nil
	}
	// Stack extension path.
	si := as.stackVMA()
	if si >= 0 && addr < as.vmas[si].Start {
		floor := as.layout.StackTop - as.layout.StackRLimit
		guard := as.sp - StackGuardGap
		switch {
		case addr < floor:
			return &AccessError{Addr: addr, Size: size, Write: write, Reason: "stack rlimit"}
		case addr < guard:
			return &AccessError{Addr: addr, Size: size, Write: write, Reason: "below stack guard"}
		default:
			newStart := addr &^ (PageSize - 1)
			as.vmas[si].Start = newStart
			as.bump()
			return nil
		}
	}
	return &AccessError{Addr: addr, Size: size, Write: write, Reason: "unmapped"}
}

// writablePage returns a page for addr that this address space owns
// exclusively, materializing a zero page or performing the copy-on-write
// fault as needed.
//
// The refcount protocol makes concurrent forks and writes safe without a
// lock: every address space holds one reference per page it maps, a page
// is only ever forked from a frozen (never-written) address space, and
// that space keeps its own reference for as long as it lives. A load of 1
// therefore proves sole ownership — no frozen space references the page,
// so no concurrent Fork can be incrementing it.
func (as *AddressSpace) writablePage(addr uint64) *page {
	key := addr / PageSize
	p := as.pages[key]
	if p == nil {
		p = newPage()
		as.pages[key] = p
		as.dirtied++
		return p
	}
	if p.refs.Load() > 1 {
		cp := newPage()
		cp.data = p.data
		p.refs.Add(-1)
		as.pages[key] = cp
		as.dirtied++
		return cp
	}
	return p
}

// WriteBytes copies b into memory at addr. The caller must have validated
// the access.
func (as *AddressSpace) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := as.writablePage(addr)
		off := addr % PageSize
		n := copy(p.data[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes at addr into a fresh slice. Unwritten bytes
// read as zero; reads never materialize pages, so forked address spaces
// stay sparse.
func (as *AddressSpace) ReadBytes(addr uint64, n int64) []byte {
	out := make([]byte, n)
	dst := out
	for len(dst) > 0 {
		off := addr % PageSize
		c := uint64(PageSize - off)
		if c > uint64(len(dst)) {
			c = uint64(len(dst))
		}
		if p := as.pages[addr/PageSize]; p != nil {
			copy(dst[:c], p.data[off:off+c])
		}
		dst = dst[c:]
		addr += c
	}
	return out
}

// Fork returns a copy-on-write clone of the address space: VMA table,
// registers of the allocator (sp, brk, mmap cursor), allocation metadata
// and the VMA version history are copied; data pages are shared with their
// refcounts incremented, so the fork costs O(mapped pages) pointer copies
// and no page data moves until one side writes.
//
// Fork must only be called on an address space that is no longer written
// (a frozen snapshot) or from the goroutine that owns it; the returned
// clone is independently writable.
func (as *AddressSpace) Fork() *AddressSpace {
	cp := &AddressSpace{
		layout:    as.layout,
		vmas:      append([]VMA(nil), as.vmas...),
		pages:     make(map[uint64]*page, len(as.pages)),
		sp:        as.sp,
		brk:       as.brk,
		mmapNext:  as.mmapNext,
		allocs:    make(map[uint64]uint64, len(as.allocs)),
		version:   as.version,
		snapshots: make(map[int][]VMA, len(as.snapshots)),
	}
	for k, p := range as.pages {
		p.refs.Add(1)
		cp.pages[k] = p
	}
	for k, v := range as.allocs {
		cp.allocs[k] = v
	}
	for k, v := range as.snapshots {
		cp.snapshots[k] = v // VMA history slices are immutable once recorded
	}
	return cp
}

// DirtyPages returns the number of pages privately materialized or
// copy-on-write faulted in this address space since it was created (or
// forked). Observability for the snapshot subsystem.
func (as *AddressSpace) DirtyPages() int64 { return as.dirtied }

var zeroPageData [PageSize]byte

func pageEqual(a, b *page) bool {
	switch {
	case a == b:
		return true
	case a == nil:
		return b.data == zeroPageData
	case b == nil:
		return a.data == zeroPageData
	default:
		return a.data == b.data
	}
}

// Equal reports whether two address spaces are observably identical: same
// layout, VMA table, stack pointer, heap state, allocation metadata,
// version history position, and byte-for-byte page contents (an absent
// page equals an all-zero page). Shared COW pages compare by pointer, so
// comparing a run against a snapshot it was forked from costs O(pages
// diverged), not O(memory).
func (as *AddressSpace) Equal(other *AddressSpace) bool {
	if as.layout != other.layout || as.sp != other.sp || as.brk != other.brk ||
		as.mmapNext != other.mmapNext || as.version != other.version {
		return false
	}
	if len(as.vmas) != len(other.vmas) {
		return false
	}
	for i := range as.vmas {
		if as.vmas[i] != other.vmas[i] {
			return false
		}
	}
	if len(as.allocs) != len(other.allocs) {
		return false
	}
	for k, v := range as.allocs {
		if ov, ok := other.allocs[k]; !ok || ov != v {
			return false
		}
	}
	for k, p := range as.pages {
		if !pageEqual(p, other.pages[k]) {
			return false
		}
	}
	for k, p := range other.pages {
		if _, ok := as.pages[k]; !ok && !pageEqual(nil, p) {
			return false
		}
	}
	return true
}

// WriteUint stores the low size bytes of v at addr, little-endian.
func (as *AddressSpace) WriteUint(addr uint64, size int64, v uint64) {
	var buf [8]byte
	for i := int64(0); i < size; i++ {
		buf[i] = byte(v >> (8 * uint(i)))
	}
	as.WriteBytes(addr, buf[:size])
}

// ReadUint loads size bytes at addr little-endian into the low bits of the
// result.
func (as *AddressSpace) ReadUint(addr uint64, size int64) uint64 {
	b := as.ReadBytes(addr, size)
	var v uint64
	for i := int64(0); i < size; i++ {
		v |= uint64(b[i]) << (8 * uint(i))
	}
	return v
}

// LoadFast validates and performs a little-endian load in one pass. It is
// observably identical to CheckAccess(addr, size, false) followed by
// ReadUint, but skips the binary VMA search when the access lands in the
// same segment as the last fast load at an unchanged VMA version, and
// reads page bytes in place instead of through an allocated slice. Loads
// never require read permission (checkOne does not test it), so a cache
// hit needs only a bounds check.
func (as *AddressSpace) LoadFast(addr uint64, size int64) (uint64, error) {
	if size <= 0 {
		size = 1
	}
	last := addr + uint64(size) - 1
	if !(as.fastRVer == as.version && addr >= as.fastRLo && last < as.fastRHi && last >= addr) {
		if err := as.CheckAccess(addr, size, false); err != nil {
			return 0, err
		}
		// CheckAccess may have grown the stack (and bumped version), so
		// re-resolve the governing VMA for the refreshed cache entry.
		if i, ok := as.findVMA(addr); ok && last < as.vmas[i].End {
			as.fastRLo, as.fastRHi, as.fastRVer = as.vmas[i].Start, as.vmas[i].End, as.version
		}
	}
	off := addr % PageSize
	if off+uint64(size) <= PageSize {
		var v uint64
		if p := as.pages[addr/PageSize]; p != nil {
			for i := int64(0); i < size; i++ {
				v |= uint64(p.data[off+uint64(i)]) << (8 * uint(i))
			}
		}
		return v, nil
	}
	return as.ReadUint(addr, size), nil
}

// StoreFast validates and performs a little-endian store in one pass —
// the write counterpart of LoadFast. The cached range is only installed
// for writable VMAs, so a hit implies write permission.
func (as *AddressSpace) StoreFast(addr uint64, size int64, v uint64) error {
	if size <= 0 {
		size = 1
	}
	last := addr + uint64(size) - 1
	if !(as.fastWVer == as.version && addr >= as.fastWLo && last < as.fastWHi && last >= addr) {
		if err := as.CheckAccess(addr, size, true); err != nil {
			return err
		}
		if i, ok := as.findVMA(addr); ok && last < as.vmas[i].End && as.vmas[i].Perm&PermWrite != 0 {
			as.fastWLo, as.fastWHi, as.fastWVer = as.vmas[i].Start, as.vmas[i].End, as.version
		}
	}
	off := addr % PageSize
	if off+uint64(size) <= PageSize {
		p := as.writablePage(addr)
		for i := int64(0); i < size; i++ {
			p.data[off+uint64(i)] = byte(v >> (8 * uint(i)))
		}
		return nil
	}
	as.WriteUint(addr, size, v)
	return nil
}

// MmapThreshold is the allocation size above which Malloc places the block
// in the mmap arena instead of growing the brk heap, as glibc does
// (M_MMAP_THRESHOLD, 128 KiB by default).
const MmapThreshold = 128 << 10

// Malloc allocates size bytes (16-byte aligned) and returns the block
// address. Small blocks grow the heap VMA brk-style; blocks of
// MmapThreshold bytes or more get their own page-aligned mapping in the
// mmap arena, so large allocations live in a separate segment with its own
// boundaries — exactly the segment diversity the crash model must handle.
func (as *AddressSpace) Malloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	const align = 16
	size = (size + align - 1) &^ (align - 1)
	if size >= MmapThreshold {
		return as.mmapAlloc(size)
	}
	addr := as.brk
	as.brk += size
	for i := range as.vmas {
		if as.vmas[i].Kind == SegHeap {
			newEnd := (as.brk + PageSize - 1) &^ (PageSize - 1)
			if newEnd != as.vmas[i].End {
				as.vmas[i].End = newEnd
				as.bump()
			}
			break
		}
	}
	as.allocs[addr] = size
	return addr, nil
}

// mmapAlloc creates a dedicated VMA for a large allocation, with an
// unmapped guard page between neighbours (so off-by-one overruns fault,
// like real mmap'd blocks).
func (as *AddressSpace) mmapAlloc(size uint64) (uint64, error) {
	addr := as.mmapNext
	mapped := (size + PageSize - 1) &^ (PageSize - 1)
	as.mmapNext += mapped + PageSize // guard page
	as.vmas = append(as.vmas, VMA{
		Start: addr,
		End:   addr + mapped,
		Perm:  PermRead | PermWrite,
		Kind:  SegMmap,
	})
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	as.bump()
	as.allocs[addr] = size
	return addr, nil
}

// Free releases a block previously returned by Malloc. Freeing an unknown
// address returns an error (the interpreter maps it to the Abort exception,
// like glibc's "invalid pointer" abort).
func (as *AddressSpace) Free(addr uint64) error {
	if _, ok := as.allocs[addr]; !ok {
		return fmt.Errorf("free of unallocated address %#x", addr)
	}
	delete(as.allocs, addr)
	return nil
}

// AllocSize returns the size of the malloc block at addr, if any.
func (as *AddressSpace) AllocSize(addr uint64) (uint64, bool) {
	s, ok := as.allocs[addr]
	return s, ok
}

// PushFrame reserves size bytes of stack (16-byte aligned) and returns the
// new frame base (the lowest address of the frame). It grows the stack VMA
// as the kernel would on a push; exceeding the rlimit returns an
// *AccessError.
func (as *AddressSpace) PushFrame(size uint64) (uint64, error) {
	const align = 16
	size = (size + align - 1) &^ (align - 1)
	newSP := as.sp - size
	floor := as.layout.StackTop - as.layout.StackRLimit
	if newSP < floor {
		return 0, &AccessError{Addr: newSP, Size: int64(size), Write: true, Reason: "stack rlimit"}
	}
	as.sp = newSP
	si := as.stackVMA()
	if si >= 0 && newSP < as.vmas[si].Start {
		as.vmas[si].Start = newSP &^ (PageSize - 1)
		as.bump()
	}
	return newSP, nil
}

// PopFrame restores the stack pointer saved before the matching PushFrame.
func (as *AddressSpace) PopFrame(oldSP uint64) { as.sp = oldSP }

// Maps renders the current VMA table in /proc/self/maps style — the
// interface the paper's run-time probe reads.
func (as *AddressSpace) Maps() string {
	s := ""
	for _, v := range as.vmas {
		s += v.String() + "\n"
	}
	return s
}
