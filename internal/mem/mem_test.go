package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	return New(DefaultLayout())
}

func TestLayoutDefaults(t *testing.T) {
	l := DefaultLayout()
	if l.StackRLimit != 8<<20 {
		t.Errorf("stack rlimit = %d, want 8MiB", l.StackRLimit)
	}
	for _, base := range []uint64{l.TextBase, l.RODataBase, l.DataBase, l.HeapBase, l.MmapBase, l.StackTop} {
		if base%PageSize != 0 {
			t.Errorf("layout base %#x not page aligned", base)
		}
	}
}

func TestVMAsOrderedAndDisjoint(t *testing.T) {
	as := newAS(t)
	vmas := as.VMAs()
	for i := 1; i < len(vmas); i++ {
		if vmas[i-1].End > vmas[i].Start {
			t.Errorf("VMAs overlap: %s then %s", vmas[i-1], vmas[i])
		}
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	as := newAS(t)
	addr, err := as.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int64{1, 2, 4, 8} {
		v := uint64(0xdeadbeefcafef00d) & ((1 << uint(8*size)) - 1)
		if size == 8 {
			v = 0xdeadbeefcafef00d
		}
		as.WriteUint(addr, size, v)
		if got := as.ReadUint(addr, size); got != v {
			t.Errorf("size %d roundtrip: got %#x, want %#x", size, got, v)
		}
	}
}

func TestReadWriteAcrossPageBoundary(t *testing.T) {
	as := newAS(t)
	base, err := as.Malloc(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Find an address straddling a page boundary within the block.
	addr := (base + PageSize) - 3
	as.WriteUint(addr, 8, 0x1122334455667788)
	if got := as.ReadUint(addr, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page roundtrip = %#x", got)
	}
}

func TestUnwrittenMemoryReadsZero(t *testing.T) {
	as := newAS(t)
	addr, _ := as.Malloc(32)
	if got := as.ReadUint(addr+16, 8); got != 0 {
		t.Errorf("fresh allocation reads %#x, want 0", got)
	}
}

func TestMallocGrowsHeapVMA(t *testing.T) {
	as := newAS(t)
	before := heapVMA(as)
	if before.Start != before.End {
		t.Fatalf("heap must start empty, got %s", before)
	}
	addr, _ := as.Malloc(3 * PageSize)
	after := heapVMA(as)
	if !after.Contains(addr) || !after.Contains(addr+3*PageSize-1) {
		t.Errorf("heap VMA %s does not cover allocation at %#x", after, addr)
	}
}

func heapVMA(as *AddressSpace) VMA {
	for _, v := range as.VMAs() {
		if v.Kind == SegHeap {
			return v
		}
	}
	return VMA{}
}

func stackVMAOf(as *AddressSpace) VMA {
	for _, v := range as.VMAs() {
		if v.Kind == SegStack {
			return v
		}
	}
	return VMA{}
}

func TestMallocAllocationsDisjoint(t *testing.T) {
	as := newAS(t)
	type block struct{ start, size uint64 }
	var blocks []block
	sizes := []uint64{1, 16, 17, 100, 4096, 5000}
	for _, s := range sizes {
		a, err := as.Malloc(s)
		if err != nil {
			t.Fatal(err)
		}
		if a%16 != 0 {
			t.Errorf("allocation %#x not 16-byte aligned", a)
		}
		for _, b := range blocks {
			if a < b.start+b.size && b.start < a+s {
				t.Errorf("allocation [%#x,%#x) overlaps [%#x,%#x)", a, a+s, b.start, b.start+b.size)
			}
		}
		blocks = append(blocks, block{a, s})
	}
}

func TestFree(t *testing.T) {
	as := newAS(t)
	a, _ := as.Malloc(64)
	if err := as.Free(a); err != nil {
		t.Errorf("Free(valid) = %v", err)
	}
	if err := as.Free(a); err == nil {
		t.Error("double free not rejected")
	}
	if err := as.Free(0x1234); err == nil {
		t.Error("free of wild pointer not rejected")
	}
}

func TestCheckAccessHeap(t *testing.T) {
	as := newAS(t)
	a, _ := as.Malloc(64)
	if err := as.CheckAccess(a, 8, true); err != nil {
		t.Errorf("valid heap write rejected: %v", err)
	}
	// Far beyond the heap: unmapped.
	if err := as.CheckAccess(a+1<<30, 8, false); err == nil {
		t.Error("unmapped access accepted")
	}
}

func TestCheckAccessReadOnly(t *testing.T) {
	as := newAS(t)
	ro := as.Layout().RODataBase
	if err := as.CheckAccess(ro, 4, false); err != nil {
		t.Errorf("read of rodata rejected: %v", err)
	}
	err := as.CheckAccess(ro, 4, true)
	if err == nil {
		t.Fatal("write to rodata accepted")
	}
	var ae *AccessError
	if !asAccessError(err, &ae) || ae.Reason != "write to read-only" {
		t.Errorf("unexpected error: %v", err)
	}
}

func asAccessError(err error, out **AccessError) bool {
	ae, ok := err.(*AccessError)
	if ok {
		*out = ae
	}
	return ok
}

func TestStackExtensionWithinGuard(t *testing.T) {
	as := newAS(t)
	sp := as.SP()
	stack := stackVMAOf(as)
	// An access just below the mapped stack but within the guard window must
	// succeed and grow the VMA (Linux expand_stack).
	target := stack.Start - 64
	if target < sp-StackGuardGap {
		t.Fatalf("test address below guard; sp=%#x start=%#x", sp, stack.Start)
	}
	if err := as.CheckAccess(target, 8, true); err != nil {
		t.Fatalf("stack extension access rejected: %v", err)
	}
	grown := stackVMAOf(as)
	if !grown.Contains(target) {
		t.Errorf("stack VMA %s did not grow to cover %#x", grown, target)
	}
}

func TestStackAccessBelowGuardFaults(t *testing.T) {
	as := newAS(t)
	sp := as.SP()
	target := sp - StackGuardGap - PageSize
	err := as.CheckAccess(target, 8, true)
	if err == nil {
		t.Fatal("access below the stack guard accepted")
	}
	var ae *AccessError
	if !asAccessError(err, &ae) || ae.Reason != "below stack guard" {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestStackRLimit(t *testing.T) {
	as := newAS(t)
	l := as.Layout()
	target := l.StackTop - l.StackRLimit - PageSize
	err := as.CheckAccess(target, 8, true)
	if err == nil {
		t.Fatal("access below stack rlimit accepted")
	}
	var ae *AccessError
	if !asAccessError(err, &ae) || ae.Reason != "stack rlimit" {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPushPopFrame(t *testing.T) {
	as := newAS(t)
	sp0 := as.SP()
	base, err := as.PushFrame(100)
	if err != nil {
		t.Fatal(err)
	}
	if base%16 != 0 {
		t.Errorf("frame base %#x not aligned", base)
	}
	if as.SP() != base || base >= sp0 {
		t.Errorf("SP after push = %#x, base = %#x, sp0 = %#x", as.SP(), base, sp0)
	}
	if err := as.CheckAccess(base, 8, true); err != nil {
		t.Errorf("frame memory not accessible: %v", err)
	}
	as.PopFrame(sp0)
	if as.SP() != sp0 {
		t.Error("PopFrame did not restore SP")
	}
}

func TestPushFrameRLimit(t *testing.T) {
	as := newAS(t)
	if _, err := as.PushFrame(9 << 20); err == nil {
		t.Error("frame larger than rlimit accepted")
	}
}

func TestSnapshotVersioning(t *testing.T) {
	as := newAS(t)
	v0 := as.Version()
	snap0 := as.SnapshotAt(v0)
	if snap0 == nil {
		t.Fatal("initial snapshot missing")
	}
	heapBefore := heapVMA(as)
	_, _ = as.Malloc(PageSize * 2)
	if as.Version() == v0 {
		t.Fatal("malloc growing heap must bump version")
	}
	// The old snapshot still shows the old heap end.
	for _, v := range as.SnapshotAt(v0) {
		if v.Kind == SegHeap && v.End != heapBefore.End {
			t.Error("old snapshot mutated by later growth")
		}
	}
}

func TestResolveMatchesCheckAccess(t *testing.T) {
	// Property: for a large random sample of addresses, the pure Resolve
	// predicate agrees with the stateful CheckAccess (on a fresh address
	// space each time, since CheckAccess may grow the stack).
	l := DefaultLayout()
	rng := rand.New(rand.NewSource(7))
	regions := []struct{ lo, hi uint64 }{
		{l.TextBase - PageSize, l.TextBase + 20*PageSize},
		{l.DataBase - PageSize, l.DataBase + 20*PageSize},
		{l.HeapBase - PageSize, l.HeapBase + 8*PageSize},
		{l.StackTop - 9<<20, l.StackTop + PageSize},
	}
	for i := 0; i < 2000; i++ {
		r := regions[rng.Intn(len(regions))]
		addr := r.lo + uint64(rng.Int63n(int64(r.hi-r.lo)))
		as := New(l)
		_, _ = as.Malloc(4 * PageSize)
		_, _, ok := Resolve(as.VMAs(), as.SP(), l.StackTop, l.StackRLimit, addr, false, true)
		err := as.CheckAccess(addr, 1, false)
		if ok != (err == nil) {
			t.Fatalf("Resolve=%v but CheckAccess err=%v for addr %#x", ok, err, addr)
		}
	}
}

func TestResolveValidRangeContainsAddr(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := New(DefaultLayout())
		a, _ := as.Malloc(uint64(rng.Intn(10000) + 1))
		lo, hi, ok := as.ValidRange(a, true)
		return ok && a >= lo && a < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJitterPreservesAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		j := DefaultLayout().Jitter(rng, 64*PageSize)
		if j.HeapBase%PageSize != 0 || j.StackTop%PageSize != 0 || j.MmapBase%PageSize != 0 {
			t.Fatal("jittered layout not page aligned")
		}
		if j.TextBase != DefaultLayout().TextBase {
			t.Fatal("jitter must not move the text segment")
		}
	}
}

func TestJitterZeroWindowIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := DefaultLayout()
	if l.Jitter(rng, 0) != l {
		t.Error("zero-window jitter must be the identity")
	}
}

func TestJitterChangesLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := DefaultLayout()
	changed := false
	for i := 0; i < 32; i++ {
		if l.Jitter(rng, 64*PageSize) != l {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("jitter never changed the layout in 32 tries")
	}
}

func TestPermString(t *testing.T) {
	if got := (PermRead | PermWrite).String(); got != "rw-" {
		t.Errorf("perm string = %q", got)
	}
	if got := (PermRead | PermExec).String(); got != "r-x" {
		t.Errorf("perm string = %q", got)
	}
}

func TestMapsRendering(t *testing.T) {
	as := newAS(t)
	s := as.Maps()
	for _, want := range []string{"[text]", "[rodata]", "[data]", "[heap]", "[stack]"} {
		if !contains(s, want) {
			t.Errorf("maps output missing %s:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEnsureSegmentSize(t *testing.T) {
	as := newAS(t)
	as.EnsureSegmentSize(SegData, 100*PageSize)
	var data VMA
	for _, v := range as.VMAs() {
		if v.Kind == SegData {
			data = v
		}
	}
	if data.End-data.Start < 100*PageSize {
		t.Errorf("data segment not grown: %s", data)
	}
	if err := as.CheckAccess(data.Start+99*PageSize, 8, true); err != nil {
		t.Errorf("grown data segment not writable: %v", err)
	}
}

func TestLargeAllocationUsesMmapArena(t *testing.T) {
	as := newAS(t)
	small, _ := as.Malloc(1024)
	big, err := as.Malloc(MmapThreshold)
	if err != nil {
		t.Fatal(err)
	}
	l := as.Layout()
	if small >= l.MmapBase {
		t.Errorf("small allocation at %#x landed in the mmap arena", small)
	}
	if big < l.MmapBase {
		t.Errorf("large allocation at %#x not in the mmap arena", big)
	}
	// The block is accessible end to end.
	if err := as.CheckAccess(big, 8, true); err != nil {
		t.Errorf("mmap block start not accessible: %v", err)
	}
	if err := as.CheckAccess(big+MmapThreshold-8, 8, true); err != nil {
		t.Errorf("mmap block end not accessible: %v", err)
	}
	// The guard page right past the mapping faults.
	if err := as.CheckAccess(big+MmapThreshold, 8, true); err == nil {
		t.Error("guard page after mmap block accessible")
	}
	if err := as.Free(big); err != nil {
		t.Errorf("Free of mmap block: %v", err)
	}
}

func TestMmapBlocksDisjointWithGuards(t *testing.T) {
	as := newAS(t)
	a, _ := as.Malloc(MmapThreshold)
	b, _ := as.Malloc(MmapThreshold * 2)
	if a == b {
		t.Fatal("same address twice")
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi < lo+MmapThreshold+PageSize {
		t.Errorf("mmap blocks too close: %#x and %#x", a, b)
	}
	// VMAs stay sorted and disjoint after mmap insertions.
	vmas := as.VMAs()
	for i := 1; i < len(vmas); i++ {
		if vmas[i-1].End > vmas[i].Start {
			t.Fatalf("VMAs overlap after mmap: %s then %s", vmas[i-1], vmas[i])
		}
	}
}
