// Package alert is a declarative alert engine over the obs metrics
// registry: rules select a signal (current value, windowed rate or
// delta, ratio of two selections, or a histogram quantile), compare it
// against a threshold with hysteresis (a separate clear level) and a
// for-duration (the breach must hold continuously before firing), and
// every state transition is logged to a bounded ring, surfaced on
// /alerts, streamed over SSE, degrades /healthz, and — on firing —
// triggers capture of a CPU+heap pprof bundle into the result cache so
// post-mortems carry the evidence.
//
// The engine evaluates registry snapshots on its own stride; nothing in
// here touches instrumented hot paths. A nil *Engine no-ops everywhere.
package alert

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Op compares a signal value against a rule threshold.
type Op string

const (
	Above Op = "above"
	Below Op = "below"
)

// breached reports whether v violates the threshold under op.
func (op Op) breached(v, threshold float64) bool {
	if op == Below {
		return v < threshold
	}
	return v > threshold
}

// cleared reports whether v is back on the safe side of the clear
// level (the hysteresis band: a firing rule resolves only once the
// value crosses clear, not threshold).
func (op Op) cleared(v, clear float64) bool {
	if op == Below {
		return v >= clear
	}
	return v <= clear
}

// Selector names a metric family plus label pairs (k, v, k, v...);
// every matching series is summed.
type Selector struct {
	Metric string   `json:"metric"`
	Labels []string `json:"labels,omitempty"`
}

// SignalKind says how a rule's value is computed from snapshots.
type SignalKind string

const (
	// Value is the current sum of the Num selection.
	Value SignalKind = "value"
	// Rate is the per-second change of the Num selection over Window.
	Rate SignalKind = "rate"
	// Delta is the absolute change of the Num selection over Window —
	// Delta Below 1 is the idiom for stall/absence detection.
	Delta SignalKind = "delta"
	// Ratio is Num / Den (Den summed over its selectors too); rules can
	// demand MinDenom observations before the ratio is trusted.
	Ratio SignalKind = "ratio"
	// Quantile is the q-quantile interpolated from the cumulative
	// histogram buckets of the Num selection.
	Quantile SignalKind = "quantile"
)

// Signal describes the measured quantity of a rule.
type Signal struct {
	Kind   SignalKind    `json:"kind"`
	Num    []Selector    `json:"num"`
	Den    []Selector    `json:"den,omitempty"`
	Q      float64       `json:"q,omitempty"`
	Window time.Duration `json:"window,omitempty"`
}

// Cond gates a rule: while the condition does not hold the rule is
// inactive (a stall rule only makes sense while work is in flight).
type Cond struct {
	Signal    Signal  `json:"signal"`
	Op        Op      `json:"op"`
	Threshold float64 `json:"threshold"`
}

// Rule is one declarative alert.
type Rule struct {
	Name      string  `json:"name"`
	Desc      string  `json:"desc,omitempty"`
	Signal    Signal  `json:"signal"`
	Op        Op      `json:"op"`
	Threshold float64 `json:"threshold"`
	// Clear is the hysteresis level the value must re-cross before a
	// firing rule resolves; zero means Threshold (no hysteresis band).
	Clear float64 `json:"clear,omitempty"`
	// For is how long the breach must hold continuously before the rule
	// fires; zero fires on the first breaching evaluation.
	For time.Duration `json:"for,omitempty"`
	// ActiveWhen gates the rule; nil means always active.
	ActiveWhen *Cond `json:"active_when,omitempty"`
	// MinDenom suppresses Ratio/Quantile rules until the denominator
	// (total observations) reaches this floor.
	MinDenom float64 `json:"min_denom,omitempty"`
}

// State is a rule's position in the OK -> pending -> firing machine.
type State string

const (
	StateOK      State = "ok"
	StatePending State = "pending"
	StateFiring  State = "firing"
)

// Transition is one logged state change.
type Transition struct {
	Rule  string    `json:"rule"`
	From  State     `json:"from"`
	To    State     `json:"to"`
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
	Desc  string    `json:"desc,omitempty"`
	// Profile is the cache key of the pprof bundle captured when the
	// rule fired (kind obs-profile-v1), empty when capture is disabled.
	Profile string `json:"profile,omitempty"`
}

// RuleView is the live state of one rule (on /alerts and in status
// JSON).
type RuleView struct {
	Name      string    `json:"name"`
	Desc      string    `json:"desc,omitempty"`
	State     State     `json:"state"`
	Active    bool      `json:"active"`
	Value     float64   `json:"value"`
	Op        Op        `json:"op"`
	Threshold float64   `json:"threshold"`
	Since     time.Time `json:"since,omitempty"`
}

// Summary is the /alerts document and the alerts section of status
// JSON.
type Summary struct {
	Firing      []string     `json:"firing,omitempty"`
	Rules       []RuleView   `json:"rules"`
	Transitions []Transition `json:"transitions,omitempty"`
	Evals       uint64       `json:"evals"`
	Profiles    uint64       `json:"profiles_captured"`
}

// histPoint is one windowed-history observation of a rule's numerator.
type histPoint struct {
	t time.Time
	v float64
}

// ruleState is a rule plus its evaluation state.
type ruleState struct {
	rule  Rule
	state State
	since time.Time // pending start or firing start
	value float64
	hist  []histPoint
}

// Config describes an Engine.
type Config struct {
	// Registry is evaluated each stride (required).
	Registry *obs.Registry
	// Stride is the evaluation period; zero means DefaultStride.
	Stride time.Duration
	// RingCap bounds the transition log; zero means DefaultRingCap.
	RingCap int
	// OnTransition, when set, is called (outside the engine lock) for
	// every state change — the dashboard wires this into the SSE hub.
	OnTransition func(Transition)
	// Profile, when set, receives a CPU+heap pprof bundle every time a
	// rule fires (see profile.go).
	Profile ProfileSink
	// ProfileDuration is the CPU profile length; zero means
	// DefaultProfileDuration.
	ProfileDuration time.Duration
}

// Engine sizing defaults.
const (
	DefaultStride  = time.Second
	DefaultRingCap = 256
)

// Engine evaluates rules against registry snapshots. Create with New;
// a nil *Engine no-ops on every method.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	now      func() time.Time
	rules    []*ruleState
	ring     []Transition
	ringNext int
	evals    uint64
	profiles uint64
}

// New returns an engine over cfg.Registry with no rules.
func New(cfg Config) *Engine {
	if cfg.Stride <= 0 {
		cfg.Stride = DefaultStride
	}
	if cfg.RingCap <= 0 {
		cfg.RingCap = DefaultRingCap
	}
	if cfg.ProfileDuration <= 0 {
		cfg.ProfileDuration = DefaultProfileDuration
	}
	return &Engine{cfg: cfg, now: time.Now}
}

// SetClock injects the time source (tests).
func (e *Engine) SetClock(now func() time.Time) {
	if e == nil || now == nil {
		return
	}
	e.mu.Lock()
	e.now = now
	e.mu.Unlock()
}

// Add registers rules (before or after Start).
func (e *Engine) Add(rules ...Rule) {
	if e == nil {
		return
	}
	e.mu.Lock()
	for _, r := range rules {
		if r.Clear == 0 {
			r.Clear = r.Threshold
		}
		e.rules = append(e.rules, &ruleState{rule: r, state: StateOK})
	}
	e.mu.Unlock()
}

// Start spawns the evaluation goroutine and returns its stop function.
func (e *Engine) Start() (stop func()) {
	if e == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(e.cfg.Stride)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				e.Tick()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Tick evaluates every rule against one registry snapshot.
func (e *Engine) Tick() {
	if e == nil {
		return
	}
	e.mu.Lock()
	now := e.now()
	snap := e.cfg.Registry.Snapshot()
	var fired []Transition
	for _, rs := range e.rules {
		if tr, ok := e.eval(rs, snap, now); ok {
			fired = append(fired, tr)
		}
	}
	e.evals++
	e.mu.Unlock()
	for _, tr := range fired {
		if e.cfg.OnTransition != nil {
			e.cfg.OnTransition(tr)
		}
		if tr.To == StateFiring && tr.Profile != "" {
			e.captureAsync(tr)
		}
	}
}

// eval advances one rule's state machine; returns the transition (if
// any). Called with the engine lock held.
func (e *Engine) eval(rs *ruleState, snap *obs.Snapshot, now time.Time) (Transition, bool) {
	r := &rs.rule
	// Gate: an inactive rule resolves (if firing) and forgets history.
	if r.ActiveWhen != nil {
		gv, gok := signalValue(&r.ActiveWhen.Signal, nil, snap, now, 0)
		if !gok || !r.ActiveWhen.Op.breached(gv, r.ActiveWhen.Threshold) {
			rs.hist = nil
			if rs.state == StateOK {
				return Transition{}, false
			}
			return e.transition(rs, StateOK, rs.value, now, "rule gate inactive"), true
		}
	}
	v, ok := signalValue(&r.Signal, rs, snap, now, r.MinDenom)
	if !ok {
		// Insufficient data (short history, MinDenom not met): a
		// pending rule falls back to OK, a firing rule holds.
		if rs.state == StatePending {
			rs.state = StateOK
		}
		return Transition{}, false
	}
	rs.value = v
	switch rs.state {
	case StateOK:
		if r.Op.breached(v, r.Threshold) {
			if r.For <= 0 {
				return e.fire(rs, v, now), true
			}
			rs.state, rs.since = StatePending, now
			return e.logOnly(rs, StateOK, StatePending, v, now), true
		}
	case StatePending:
		if !r.Op.breached(v, r.Threshold) {
			rs.state = StateOK
			return e.logOnly(rs, StatePending, StateOK, v, now), true
		}
		if now.Sub(rs.since) >= r.For {
			return e.fire(rs, v, now), true
		}
	case StateFiring:
		if r.Op.cleared(v, r.Clear) {
			return e.transition(rs, StateOK, v, now, "resolved"), true
		}
	}
	return Transition{}, false
}

// fire moves a rule into StateFiring, stamping the profile key the
// async capture will store under.
func (e *Engine) fire(rs *ruleState, v float64, now time.Time) Transition {
	from := rs.state
	rs.state, rs.since = StateFiring, now
	tr := Transition{Rule: rs.rule.Name, From: from, To: StateFiring,
		At: now, Value: v, Desc: rs.rule.Desc}
	if e.cfg.Profile != nil {
		tr.Profile = ProfileKey(rs.rule.Name, now)
	}
	e.log(tr)
	return tr
}

func (e *Engine) transition(rs *ruleState, to State, v float64, now time.Time, desc string) Transition {
	from := rs.state
	rs.state, rs.since = to, now
	tr := Transition{Rule: rs.rule.Name, From: from, To: to, At: now, Value: v, Desc: desc}
	e.log(tr)
	return tr
}

func (e *Engine) logOnly(rs *ruleState, from, to State, v float64, now time.Time) Transition {
	tr := Transition{Rule: rs.rule.Name, From: from, To: to, At: now, Value: v}
	e.log(tr)
	return tr
}

// log appends a transition to the bounded ring and keeps the firing
// gauge fresh. Called with the engine lock held.
func (e *Engine) log(tr Transition) {
	if len(e.ring) < e.cfg.RingCap {
		e.ring = append(e.ring, tr)
	} else {
		e.ring[e.ringNext] = tr
	}
	e.ringNext = (e.ringNext + 1) % e.cfg.RingCap
	if tr.To == StateFiring {
		e.cfg.Registry.Counter("epvf_obs_alerts_fired_total", "rule", tr.Rule).Inc()
	}
	var firing int64
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			firing++
		}
	}
	e.cfg.Registry.Gauge("epvf_obs_alerts_firing").Set(float64(firing))
}

// signalValue computes a signal from the snapshot (plus the rule's own
// history for windowed kinds). ok=false means "insufficient data".
func signalValue(sig *Signal, rs *ruleState, snap *obs.Snapshot, now time.Time, minDenom float64) (float64, bool) {
	switch sig.Kind {
	case Rate, Delta:
		if rs == nil {
			return 0, false
		}
		cur := sumSelectors(snap, sig.Num)
		window := sig.Window
		if window <= 0 {
			window = 10 * time.Second
		}
		rs.hist = append(rs.hist, histPoint{t: now, v: cur})
		// Trim history beyond the window (keep one point at/past the
		// edge so the delta spans the full window).
		cut := now.Add(-window)
		idx := 0
		for idx < len(rs.hist)-1 && rs.hist[idx+1].t.Before(cut) {
			idx++
		}
		rs.hist = rs.hist[idx:]
		oldest := rs.hist[0]
		if now.Sub(oldest.t) < window {
			return 0, false // history shorter than the window yet
		}
		d := cur - oldest.v
		if sig.Kind == Delta {
			return d, true
		}
		dt := now.Sub(oldest.t).Seconds()
		if dt <= 0 {
			return 0, false
		}
		return d / dt, true
	case Ratio:
		num := sumSelectors(snap, sig.Num)
		den := sumSelectors(snap, sig.Den)
		if den < minDenom || den == 0 {
			return 0, false
		}
		return num / den, true
	case Quantile:
		return histQuantile(snap, sig.Num, sig.Q, minDenom)
	default: // Value
		return sumSelectors(snap, sig.Num), true
	}
}

// sumSelectors sums every non-histogram sample matching any selector.
func sumSelectors(snap *obs.Snapshot, sels []Selector) float64 {
	var total float64
	for i := range snap.Samples {
		smp := &snap.Samples[i]
		if smp.Kind == "histogram" {
			continue
		}
		for j := range sels {
			if smp.Name == sels[j].Metric && matchLabels(smp, sels[j].Labels) {
				total += smp.Value
				break
			}
		}
	}
	return total
}

func matchLabels(smp *obs.Sample, kv []string) bool {
	for i := 0; i+1 < len(kv); i += 2 {
		if smp.Labels[kv[i]] != kv[i+1] {
			return false
		}
	}
	return true
}

// histQuantile merges the cumulative buckets of every histogram sample
// matching the selectors and linearly interpolates the q-quantile.
func histQuantile(snap *obs.Snapshot, sels []Selector, q, minDenom float64) (float64, bool) {
	merged := map[float64]int64{}
	var total int64
	for i := range snap.Samples {
		smp := &snap.Samples[i]
		if smp.Kind != "histogram" {
			continue
		}
		for j := range sels {
			if smp.Name == sels[j].Metric && matchLabels(smp, sels[j].Labels) {
				for _, b := range smp.Buckets {
					merged[b.Le] += b.Count
				}
				total += smp.Count
				break
			}
		}
	}
	if total == 0 || float64(total) < minDenom {
		return 0, false
	}
	bounds := make([]float64, 0, len(merged))
	for le := range merged {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	target := q * float64(total)
	prevBound, prevCount := 0.0, int64(0)
	for _, le := range bounds {
		c := merged[le]
		if float64(c) >= target {
			if math.IsInf(le, 1) {
				return prevBound, true // overflow bucket: best bound we have
			}
			span := float64(c - prevCount)
			if span <= 0 {
				return le, true
			}
			frac := (target - float64(prevCount)) / span
			return prevBound + frac*(le-prevBound), true
		}
		prevBound, prevCount = le, c
	}
	return prevBound, true
}

// Firing returns the names of currently-firing rules (for /healthz
// degradation). Nil-safe (empty).
func (e *Engine) Firing() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			out = append(out, rs.rule.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Summarize snapshots the engine (nil for a nil engine).
func (e *Engine) Summarize() *Summary {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Summary{Evals: e.evals, Profiles: e.profiles}
	for _, rs := range e.rules {
		rv := RuleView{
			Name: rs.rule.Name, Desc: rs.rule.Desc, State: rs.state,
			Active: true, Value: rs.value, Op: rs.rule.Op,
			Threshold: rs.rule.Threshold,
		}
		if rs.state != StateOK {
			rv.Since = rs.since
		}
		s.Rules = append(s.Rules, rv)
		if rs.state == StateFiring {
			s.Firing = append(s.Firing, rs.rule.Name)
		}
	}
	sort.Strings(s.Firing)
	// Ring contents oldest-first.
	n := len(e.ring)
	start := 0
	if n == e.cfg.RingCap {
		start = e.ringNext
	}
	for i := 0; i < n; i++ {
		s.Transitions = append(s.Transitions, e.ring[(start+i)%n])
	}
	return s
}

// ServeHTTP serves the /alerts endpoint: the Summary as indented JSON.
func (e *Engine) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if e == nil {
		http.Error(w, "alert engine disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(e.Summarize())
}
