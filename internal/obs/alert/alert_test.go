package alert

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// stepClock drives an engine deterministically.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestEngine(reg *obs.Registry) (*Engine, *stepClock) {
	clk := &stepClock{t: time.Unix(10000, 0)}
	e := New(Config{Registry: reg, Stride: time.Second})
	e.SetClock(clk.now)
	return e, clk
}

func state(t *testing.T, e *Engine, rule string) State {
	t.Helper()
	for _, rv := range e.Summarize().Rules {
		if rv.Name == rule {
			return rv.State
		}
	}
	t.Fatalf("rule %q not found", rule)
	return ""
}

func TestThresholdHysteresis(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("load")
	e, _ := newTestEngine(reg)
	e.Add(Rule{
		Name:      "high_load",
		Signal:    Signal{Kind: Value, Num: []Selector{{Metric: "load"}}},
		Op:        Above,
		Threshold: 10,
		Clear:     5,
	})

	g.Set(8)
	e.Tick()
	if got := state(t, e, "high_load"); got != StateOK {
		t.Fatalf("state = %v, want ok", got)
	}
	g.Set(11)
	e.Tick()
	if got := state(t, e, "high_load"); got != StateFiring {
		t.Fatalf("state = %v, want firing (no For => immediate)", got)
	}
	// Back under threshold but inside the hysteresis band: still firing.
	g.Set(7)
	e.Tick()
	if got := state(t, e, "high_load"); got != StateFiring {
		t.Fatalf("state = %v, want firing (7 > clear 5)", got)
	}
	// Crosses the clear level: resolves.
	g.Set(4)
	e.Tick()
	if got := state(t, e, "high_load"); got != StateOK {
		t.Fatalf("state = %v, want ok after clearing", got)
	}
	sum := e.Summarize()
	if len(sum.Transitions) != 2 {
		t.Fatalf("transitions = %d, want 2 (fire + resolve): %+v", len(sum.Transitions), sum.Transitions)
	}
	if sum.Transitions[0].To != StateFiring || sum.Transitions[1].To != StateOK {
		t.Fatalf("bad transition sequence: %+v", sum.Transitions)
	}
}

func TestForDurationEdgeCases(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v")
	e, clk := newTestEngine(reg)
	e.Add(Rule{
		Name:      "sustained",
		Signal:    Signal{Kind: Value, Num: []Selector{{Metric: "v"}}},
		Op:        Above,
		Threshold: 1,
		For:       3 * time.Second,
	})

	// Breach begins: pending, not firing.
	g.Set(2)
	e.Tick()
	if got := state(t, e, "sustained"); got != StatePending {
		t.Fatalf("state = %v, want pending", got)
	}
	// Dips back under threshold before For elapses: pending resets.
	clk.advance(2 * time.Second)
	g.Set(0)
	e.Tick()
	if got := state(t, e, "sustained"); got != StateOK {
		t.Fatalf("state = %v, want ok (breach interrupted)", got)
	}
	// Breach again; the For timer must restart from zero.
	g.Set(2)
	e.Tick()
	clk.advance(2 * time.Second)
	e.Tick()
	if got := state(t, e, "sustained"); got != StatePending {
		t.Fatalf("state = %v, want pending (only 2s into new breach)", got)
	}
	clk.advance(time.Second)
	e.Tick()
	if got := state(t, e, "sustained"); got != StateFiring {
		t.Fatalf("state = %v, want firing (held 3s)", got)
	}
	if firing := e.Firing(); len(firing) != 1 || firing[0] != "sustained" {
		t.Fatalf("Firing() = %v", firing)
	}
}

func TestDeltaStallAndGate(t *testing.T) {
	reg := obs.NewRegistry()
	executed := reg.Counter("epvf_campaign_runs_executed_total", "id", "x")
	active := reg.Gauge("epvf_campaign_active")
	e, clk := newTestEngine(reg)
	e.Add(CampaignStall(5 * time.Second))

	// No campaign active: gate holds the rule inactive forever.
	for i := 0; i < 10; i++ {
		e.Tick()
		clk.advance(time.Second)
	}
	if got := state(t, e, "campaign_stall"); got != StateOK {
		t.Fatalf("state = %v, want ok while gated", got)
	}

	// Campaign starts and makes progress: no stall.
	active.Set(1)
	for i := 0; i < 8; i++ {
		executed.Inc()
		e.Tick()
		clk.advance(time.Second)
	}
	if got := state(t, e, "campaign_stall"); got != StateOK {
		t.Fatalf("state = %v, want ok while progressing", got)
	}

	// Progress stops: once the 5s window shows zero delta, it fires.
	for i := 0; i < 6; i++ {
		e.Tick()
		clk.advance(time.Second)
	}
	if got := state(t, e, "campaign_stall"); got != StateFiring {
		t.Fatalf("state = %v, want firing after stall window", got)
	}

	// Progress resumes: delta >= clear resolves the alert.
	for i := 0; i < 6; i++ {
		executed.Inc()
		e.Tick()
		clk.advance(time.Second)
	}
	if got := state(t, e, "campaign_stall"); got != StateOK {
		t.Fatalf("state = %v, want ok after recovery", got)
	}

	// Stall again, then end the campaign while firing: gate resolves it.
	for i := 0; i < 7; i++ {
		e.Tick()
		clk.advance(time.Second)
	}
	if got := state(t, e, "campaign_stall"); got != StateFiring {
		t.Fatalf("state = %v, want firing before gate drop", got)
	}
	active.Set(0)
	e.Tick()
	if got := state(t, e, "campaign_stall"); got != StateOK {
		t.Fatalf("state = %v, want ok once campaign ends", got)
	}
}

func TestRatioMinDenom(t *testing.T) {
	reg := obs.NewRegistry()
	e, _ := newTestEngine(reg)
	e.Add(SDCSpike(0.05, 2, 100))

	sdc := reg.Counter("epvf_campaign_runs_total", "id", "x", "outcome", "sdc")
	ok := reg.Counter("epvf_campaign_runs_total", "id", "x", "outcome", "masked")

	// 50% SDC but only 10 runs: MinDenom suppresses the rule.
	sdc.Add(5)
	ok.Add(5)
	e.Tick()
	if got := state(t, e, "sdc_rate_spike"); got != StateOK {
		t.Fatalf("state = %v, want ok under MinDenom", got)
	}
	// 200 runs at 50% SDC >> 2x the 5% prediction: fires.
	sdc.Add(95)
	ok.Add(95)
	e.Tick()
	if got := state(t, e, "sdc_rate_spike"); got != StateFiring {
		t.Fatalf("state = %v, want firing on SDC spike", got)
	}
}

func TestQuantileRule(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("epvf_injection_latency_seconds", obs.LatencyBuckets, "id", "x")
	e, _ := newTestEngine(reg)
	e.Add(InjectionP99(100*time.Millisecond, 50))

	// 100 fast observations: p99 well under the limit.
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	e.Tick()
	if got := state(t, e, "injection_p99_latency"); got != StateOK {
		t.Fatalf("state = %v, want ok with fast injections", got)
	}
	// Shift the tail: 100 slow observations push p99 over 100ms.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	e.Tick()
	if got := state(t, e, "injection_p99_latency"); got != StateFiring {
		t.Fatalf("state = %v, want firing on slow tail", got)
	}
}

// memSink collects profile bundles in memory.
type memSink struct {
	mu   sync.Mutex
	got  map[string][]byte
	done chan struct{}
}

func (s *memSink) Put(kind, key string, data []byte) error {
	s.mu.Lock()
	if s.got == nil {
		s.got = map[string][]byte{}
	}
	s.got[kind+"/"+key] = data
	s.mu.Unlock()
	select {
	case s.done <- struct{}{}:
	default:
	}
	return nil
}

func TestProfileCaptureOnFire(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v")
	sink := &memSink{done: make(chan struct{}, 1)}
	clk := &stepClock{t: time.Unix(20000, 0)}
	e := New(Config{Registry: reg, Profile: sink, ProfileDuration: 50 * time.Millisecond})
	e.SetClock(clk.now)
	e.Add(Rule{
		Name:      "Spike Rule!",
		Signal:    Signal{Kind: Value, Num: []Selector{{Metric: "v"}}},
		Op:        Above,
		Threshold: 1,
	})

	g.Set(5)
	e.Tick()
	select {
	case <-sink.done:
	case <-time.After(5 * time.Second):
		t.Fatal("profile bundle never stored")
	}

	wantKey := ProfileKey("Spike Rule!", clk.now())
	if strings.ContainsAny(wantKey, " !ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
		t.Fatalf("unsanitized key %q", wantKey)
	}
	sink.mu.Lock()
	data := sink.got[ProfileKind+"/"+wantKey]
	sink.mu.Unlock()
	if data == nil {
		t.Fatalf("bundle missing under %s/%s; have %v", ProfileKind, wantKey, keys(sink))
	}
	var bundle ProfileBundle
	if err := json.Unmarshal(data, &bundle); err != nil {
		t.Fatal(err)
	}
	if bundle.Rule != "Spike Rule!" || bundle.Value != 5 {
		t.Fatalf("bad bundle meta: %+v", bundle)
	}
	if len(bundle.CPUProfile) == 0 || len(bundle.HeapProfile) == 0 {
		t.Fatalf("bundle missing profiles: cpu=%d heap=%d", len(bundle.CPUProfile), len(bundle.HeapProfile))
	}
	// The transition in the ring carries the same key.
	sum := e.Summarize()
	if len(sum.Transitions) == 0 || sum.Transitions[0].Profile != wantKey {
		t.Fatalf("transition missing profile key: %+v", sum.Transitions)
	}
}

func keys(s *memSink) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.got {
		out = append(out, k)
	}
	return out
}

func TestTransitionRingBounded(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v")
	clk := &stepClock{t: time.Unix(0, 0)}
	e := New(Config{Registry: reg, RingCap: 4})
	e.SetClock(clk.now)
	e.Add(Rule{Name: "flap", Signal: Signal{Kind: Value, Num: []Selector{{Metric: "v"}}},
		Op: Above, Threshold: 1})
	for i := 0; i < 10; i++ {
		g.Set(5)
		e.Tick()
		g.Set(0)
		e.Tick()
		clk.advance(time.Second)
	}
	sum := e.Summarize()
	if len(sum.Transitions) != 4 {
		t.Fatalf("ring = %d entries, want cap 4", len(sum.Transitions))
	}
	// Oldest-first: entries must be in non-decreasing time order.
	for i := 1; i < len(sum.Transitions); i++ {
		if sum.Transitions[i].At.Before(sum.Transitions[i-1].At) {
			t.Fatalf("ring out of order: %+v", sum.Transitions)
		}
	}
	if fired := reg.Snapshot().Counter("epvf_obs_alerts_fired_total", "rule", "flap"); fired != 10 {
		t.Fatalf("fired counter = %d, want 10", fired)
	}
}

func TestAlertsHTTPAndNotify(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v")
	var notified []Transition
	var mu sync.Mutex
	clk := &stepClock{t: time.Unix(0, 0)}
	e := New(Config{Registry: reg, OnTransition: func(tr Transition) {
		mu.Lock()
		notified = append(notified, tr)
		mu.Unlock()
	}})
	e.SetClock(clk.now)
	e.Add(Rule{Name: "r", Signal: Signal{Kind: Value, Num: []Selector{{Metric: "v"}}},
		Op: Above, Threshold: 1})
	g.Set(2)
	e.Tick()

	rr := httptest.NewRecorder()
	e.ServeHTTP(rr, httptest.NewRequest("GET", "/alerts", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"firing"`) {
		t.Fatalf("bad /alerts: %d %s", rr.Code, rr.Body.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(notified) != 1 || notified[0].To != StateFiring {
		t.Fatalf("notify = %+v", notified)
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	e.Tick()
	e.Add(Rule{})
	e.SetClock(time.Now)
	stop := e.Start()
	stop()
	if e.Summarize() != nil || e.Firing() != nil {
		t.Fatal("nil engine views should be nil")
	}
}
