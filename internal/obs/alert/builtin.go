package alert

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Built-in rules. Each constructor returns a Rule wired to the metric
// names the subsystems actually publish; callers tune thresholds and
// windows per deployment (the dashboard mounts them with defaults).

// CampaignStall fires when an active campaign executes no runs for the
// window: Delta(epvf_campaign_runs_executed_total) < 1 while the
// epvf_campaign_active gauge says a run loop is in flight.
func CampaignStall(window time.Duration) Rule {
	if window <= 0 {
		window = 10 * time.Second
	}
	return Rule{
		Name:      "campaign_stall",
		Desc:      fmt.Sprintf("no injections executed for %v while a campaign is active", window),
		Signal:    Signal{Kind: Delta, Num: []Selector{{Metric: "epvf_campaign_runs_executed_total"}}, Window: window},
		Op:        Below,
		Threshold: 1,
		Clear:     1,
		ActiveWhen: &Cond{
			Signal:    Signal{Kind: Value, Num: []Selector{{Metric: "epvf_campaign_active"}}},
			Op:        Above,
			Threshold: 0.5,
		},
	}
}

// CoordinatorStall fires when a dist coordinator with pending shards
// merges no runs for the window — the fleet is leased out but nothing
// is coming back.
func CoordinatorStall(window time.Duration) Rule {
	if window <= 0 {
		window = 15 * time.Second
	}
	return Rule{
		Name:      "coordinator_stall",
		Desc:      fmt.Sprintf("no worker results merged for %v with shards pending", window),
		Signal:    Signal{Kind: Delta, Num: []Selector{{Metric: "epvf_dist_runs_merged_total"}}, Window: window},
		Op:        Below,
		Threshold: 1,
		Clear:     1,
		ActiveWhen: &Cond{
			Signal:    Signal{Kind: Value, Num: []Selector{{Metric: "epvf_dist_shards_pending"}}},
			Op:        Above,
			Threshold: 0.5,
		},
	}
}

// WorkerLoss fires when a coordinator with pending shards has no live
// workers for the for-duration.
func WorkerLoss(hold time.Duration) Rule {
	if hold <= 0 {
		hold = 5 * time.Second
	}
	return Rule{
		Name:      "worker_loss",
		Desc:      "dist coordinator has pending shards but zero live workers",
		Signal:    Signal{Kind: Value, Num: []Selector{{Metric: "epvf_dist_workers"}}},
		Op:        Below,
		Threshold: 0.5,
		Clear:     0.5,
		For:       hold,
		ActiveWhen: &Cond{
			Signal:    Signal{Kind: Value, Num: []Selector{{Metric: "epvf_dist_shards_pending"}}},
			Op:        Above,
			Threshold: 0.5,
		},
	}
}

// SDCSpike fires when the measured SDC rate exceeds the ePVF-predicted
// rate by more than factor (hysteresis: resolves once back under the
// prediction itself), after at least minRuns completed injections. The
// predicted rate comes from the attr ledger / analysis (a.EPVF()).
func SDCSpike(predicted, factor float64, minRuns int) Rule {
	if factor <= 1 {
		factor = 2
	}
	if minRuns <= 0 {
		minRuns = 200
	}
	return Rule{
		Name: "sdc_rate_spike",
		Desc: fmt.Sprintf("measured SDC rate above %.3gx the ePVF-predicted %.4g", factor, predicted),
		Signal: Signal{Kind: Ratio,
			Num: []Selector{{Metric: "epvf_campaign_runs_total", Labels: []string{"outcome", "sdc"}}},
			Den: []Selector{{Metric: "epvf_campaign_runs_total"}}},
		Op:        Above,
		Threshold: predicted * factor,
		Clear:     predicted,
		MinDenom:  float64(minRuns),
	}
}

// CacheHitCollapse fires when the overall result-cache hit ratio drops
// below floor after at least minLookups lookups.
func CacheHitCollapse(floor float64, minLookups int) Rule {
	if floor <= 0 {
		floor = 0.2
	}
	if minLookups <= 0 {
		minLookups = 100
	}
	hits := Selector{Metric: "epvf_cache_hits_total"}
	misses := Selector{Metric: "epvf_cache_misses_total"}
	return Rule{
		Name:      "cache_hit_collapse",
		Desc:      fmt.Sprintf("result-cache hit ratio below %.2g", floor),
		Signal:    Signal{Kind: Ratio, Num: []Selector{hits}, Den: []Selector{hits, misses}},
		Op:        Below,
		Threshold: floor,
		Clear:     floor * 1.25,
		MinDenom:  float64(minLookups),
	}
}

// InjectionP99 fires when the p99 injection latency exceeds the limit,
// after at least minObs recorded injections.
func InjectionP99(limit time.Duration, minObs int) Rule {
	if limit <= 0 {
		limit = 250 * time.Millisecond
	}
	if minObs <= 0 {
		minObs = 100
	}
	return Rule{
		Name:      "injection_p99_latency",
		Desc:      fmt.Sprintf("injection p99 latency above %v", limit),
		Signal:    Signal{Kind: Quantile, Num: []Selector{{Metric: "epvf_injection_latency_seconds"}}, Q: 0.99},
		Op:        Above,
		Threshold: limit.Seconds(),
		Clear:     limit.Seconds() * 0.8,
		MinDenom:  float64(minObs),
	}
}

// BuiltinConfig tunes the default rule set.
type BuiltinConfig struct {
	StallWindow  time.Duration // campaign/coordinator stall window
	PredictedSDC float64       // ePVF-predicted SDC rate (0 disables the spike rule)
	SDCFactor    float64
	P99Limit     time.Duration
}

// Builtins returns the default rule set the dashboard mounts.
func Builtins(cfg BuiltinConfig) []Rule {
	rules := []Rule{
		CampaignStall(cfg.StallWindow),
		CoordinatorStall(cfg.StallWindow * 3 / 2),
		WorkerLoss(0),
		CacheHitCollapse(0, 0),
		InjectionP99(cfg.P99Limit, 0),
	}
	if cfg.PredictedSDC > 0 {
		rules = append(rules, SDCSpike(cfg.PredictedSDC, cfg.SDCFactor, 0))
	}
	return rules
}

// defaultEngine mirrors obs.Default: the process-wide engine the
// /debug/vars alerts section reads. Installed by dashboard.Mount.
var defaultEngine atomic.Pointer[Engine]

// Default returns the process-wide engine (nil when disabled).
func Default() *Engine { return defaultEngine.Load() }

// SetDefault installs the process-wide engine (nil disables).
func SetDefault(e *Engine) { defaultEngine.Store(e) }
