package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"
)

// ProfileKind is the cache kind pprof bundles are stored under (in
// internal/cache terms: <cache-dir>/epvf-cache-v1/obs-profile-v1/<key>).
const ProfileKind = "obs-profile-v1"

// DefaultProfileDuration is the CPU profile length per capture.
const DefaultProfileDuration = 2 * time.Second

// profileBucket buckets fire times so repeated flapping of one rule
// within five minutes overwrites one bundle instead of accreting.
const profileBucket = 5 * time.Minute

// ProfileSink stores a captured bundle; *cache.Store satisfies it.
type ProfileSink interface {
	Put(kind, hash string, data []byte) error
}

// ProfileBundle is the stored JSON document: the fire context plus the
// raw pprof payloads (base64 via encoding/json []byte rules).
type ProfileBundle struct {
	Rule        string    `json:"rule"`
	FiredAt     time.Time `json:"fired_at"`
	Value       float64   `json:"value"`
	CPUMillis   int64     `json:"cpu_profile_millis"`
	CPUProfile  []byte    `json:"cpu_profile,omitempty"`
	HeapProfile []byte    `json:"heap_profile,omitempty"`
	Error       string    `json:"error,omitempty"`
}

// ProfileKey derives the cache key for a firing: the sanitized rule
// name plus the fire-time bucket. Cache keys allow only [a-z0-9_-].
func ProfileKey(rule string, at time.Time) string {
	var b strings.Builder
	for _, r := range strings.ToLower(rule) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return fmt.Sprintf("%s-%d", b.String(), at.Unix()/int64(profileBucket/time.Second))
}

// cpuProfiling guards the process-wide CPU profiler: only one
// StartCPUProfile may be active at a time, so concurrent firings share
// one capture (the losers still store a heap-only bundle).
var cpuProfiling atomic.Bool

// captureAsync captures a CPU+heap bundle for a firing transition and
// stores it under tr.Profile, off the evaluation goroutine.
func (e *Engine) captureAsync(tr Transition) {
	go func() {
		bundle := ProfileBundle{Rule: tr.Rule, FiredAt: tr.At, Value: tr.Value}
		if cpuProfiling.CompareAndSwap(false, true) {
			var cpu bytes.Buffer
			if err := pprof.StartCPUProfile(&cpu); err != nil {
				bundle.Error = err.Error()
			} else {
				time.Sleep(e.cfg.ProfileDuration)
				pprof.StopCPUProfile()
				bundle.CPUProfile = cpu.Bytes()
				bundle.CPUMillis = e.cfg.ProfileDuration.Milliseconds()
			}
			cpuProfiling.Store(false)
		} else {
			bundle.Error = "cpu profiler busy (concurrent capture)"
		}
		var heap bytes.Buffer
		if p := pprof.Lookup("heap"); p != nil {
			if err := p.WriteTo(&heap, 0); err == nil {
				bundle.HeapProfile = heap.Bytes()
			}
		}
		data, err := json.Marshal(bundle)
		if err != nil {
			return
		}
		if err := e.cfg.Profile.Put(ProfileKind, tr.Profile, data); err == nil {
			e.mu.Lock()
			e.profiles++
			e.mu.Unlock()
		}
	}()
}
