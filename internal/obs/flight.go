package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/report"
)

// Flight is the always-on flight recorder: a fixed-size ring of the most
// recent completed spans plus bounded per-shard injection exemplars (the
// slowest K injections of each shard, and the first injection of every
// crash class). It exists so a hung or crashed process can explain its
// recent past even when JSONL tracing is off — /debug/flight dumps it
// live, CLIs dump it on abnormal exit.
//
// Recording is one short mutex hold over preallocated storage: no
// allocation per span once the ring is warm, no I/O ever. A nil *Flight
// no-ops on every method, matching the rest of obs.
type Flight struct {
	mu     sync.Mutex
	ring   []SpanRecord // fixed capacity, len grows to cap then wraps
	next   int          // ring write cursor
	total  uint64       // spans ever recorded
	injs   uint64       // injections ever observed
	k      int          // slowest-K exemplars per shard
	shards map[int]*InjectionSet
	order  []int // shard insertion order, for bounded eviction
}

// Flight sizing defaults: the ring holds the last DefaultFlightSpans
// spans (~100KB), exemplars keep the DefaultFlightSlowest slowest
// injections per shard, and at most flightMaxShards shards are tracked
// (oldest evicted first) so a long campaign cannot grow the recorder.
const (
	DefaultFlightSpans   = 512
	DefaultFlightSlowest = 4
	flightMaxShards      = 256
)

// NewFlight returns a recorder holding the last spanCap spans and the
// slowest slowestK injections per shard.
func NewFlight(spanCap, slowestK int) *Flight {
	if spanCap <= 0 {
		spanCap = DefaultFlightSpans
	}
	if slowestK <= 0 {
		slowestK = DefaultFlightSlowest
	}
	return &Flight{
		ring:   make([]SpanRecord, 0, spanCap),
		k:      slowestK,
		shards: make(map[int]*InjectionSet),
	}
}

// Record adds a completed span to the ring, evicting the oldest once
// full. Nil-safe.
func (f *Flight) Record(rec SpanRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, rec)
	} else {
		f.ring[f.next] = rec
	}
	f.next = (f.next + 1) % cap(f.ring)
	f.total++
	f.mu.Unlock()
}

// ObserveInjection feeds one completed injection into the per-shard
// exemplar sets. Nil-safe.
func (f *Flight) ObserveInjection(inj Injection) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.injs++
	set := f.shards[inj.Shard]
	if set == nil {
		if len(f.order) >= flightMaxShards {
			delete(f.shards, f.order[0])
			f.order = f.order[1:]
		}
		set = NewInjectionSet(f.k)
		f.shards[inj.Shard] = set
		f.order = append(f.order, inj.Shard)
	}
	set.Observe(inj)
	f.mu.Unlock()
}

// FlightView is the serializable snapshot /debug/flight renders.
type FlightView struct {
	SpansTotal      uint64 `json:"spans_total"`
	InjectionsTotal uint64 `json:"injections_total"`
	// RecentSpans are the ring contents, oldest first.
	RecentSpans []SpanRecord     `json:"recent_spans"`
	Shards      []ShardExemplars `json:"shards,omitempty"`
}

// ShardExemplars is one shard's notable injections.
type ShardExemplars struct {
	Shard   int         `json:"shard"`
	Notable []Injection `json:"notable"`
}

// View snapshots the recorder. Nil-safe (zero view).
func (f *Flight) View() FlightView {
	if f == nil {
		return FlightView{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	v := FlightView{SpansTotal: f.total, InjectionsTotal: f.injs}
	if n := len(f.ring); n > 0 {
		v.RecentSpans = make([]SpanRecord, 0, n)
		start := 0
		if n == cap(f.ring) {
			start = f.next
		}
		for i := 0; i < n; i++ {
			v.RecentSpans = append(v.RecentSpans, f.ring[(start+i)%n])
		}
	}
	for _, shard := range f.order {
		v.Shards = append(v.Shards, ShardExemplars{Shard: shard, Notable: f.shards[shard].Notable()})
	}
	sort.Slice(v.Shards, func(i, j int) bool { return v.Shards[i].Shard < v.Shards[j].Shard })
	return v
}

// WriteText renders the recorder as a human-readable dump (the
// ?format=text view of /debug/flight, and the abnormal-exit dump).
func (f *Flight) WriteText(w io.Writer) {
	v := f.View()
	fmt.Fprintf(w, "flight recorder: %d spans recorded (%d retained), %d injections observed\n",
		v.SpansTotal, len(v.RecentSpans), v.InjectionsTotal)
	if len(v.RecentSpans) > 0 {
		tab := report.NewTable("Recent spans (oldest first)", "Proc", "Span", "Trace", "Start", "Wall")
		for _, rec := range v.RecentSpans {
			tab.AddRow(rec.Proc, rec.Name, rec.TraceID,
				rec.Start.Format("15:04:05.000"),
				time.Duration(rec.WallNS).Round(time.Microsecond).String())
		}
		fmt.Fprint(w, tab.String())
	}
	for _, sh := range v.Shards {
		tab := report.NewTable(fmt.Sprintf("Shard %d exemplars", sh.Shard),
			"Index", "Outcome", "Class", "Wall")
		for _, inj := range sh.Notable {
			tab.AddRow(inj.Index, inj.Outcome, inj.Class,
				time.Duration(inj.WallNS).Round(time.Microsecond).String())
		}
		fmt.Fprint(w, tab.String())
	}
}

// Injection is one completed fault injection as the flight recorder sees
// it — a neutral mirror of fi.Record (obs cannot import internal/fi).
type Injection struct {
	Shard   int       `json:"shard"`
	Index   int64     `json:"index"`
	Outcome string    `json:"outcome"`
	Class   string    `json:"class,omitempty"` // crash class, "" otherwise
	Start   time.Time `json:"start"`
	WallNS  int64     `json:"wall_ns"`
}

// InjectionSet collects the notable injections of one shard: the slowest
// k plus the first of each crash class. Bounded by construction —
// len(slowest) ≤ k, one entry per distinct class — it is both the flight
// recorder's per-shard store and the seam workers/engine use to pick
// which injection spans ship with shard results.
type InjectionSet struct {
	k       int
	slowest []Injection // descending WallNS
	classes map[string]Injection
	order   []string // class first-seen order
}

// NewInjectionSet returns a set keeping the slowest k injections.
func NewInjectionSet(k int) *InjectionSet {
	if k <= 0 {
		k = DefaultFlightSlowest
	}
	return &InjectionSet{k: k, classes: make(map[string]Injection)}
}

// Observe feeds one injection.
func (s *InjectionSet) Observe(inj Injection) {
	if s == nil {
		return
	}
	// Insert into the slowest-k list (descending), then truncate.
	i := sort.Search(len(s.slowest), func(i int) bool { return s.slowest[i].WallNS < inj.WallNS })
	if i < s.k {
		s.slowest = append(s.slowest, Injection{})
		copy(s.slowest[i+1:], s.slowest[i:])
		s.slowest[i] = inj
		if len(s.slowest) > s.k {
			s.slowest = s.slowest[:s.k]
		}
	}
	if inj.Class != "" {
		if _, ok := s.classes[inj.Class]; !ok {
			s.classes[inj.Class] = inj
			s.order = append(s.order, inj.Class)
		}
	}
}

// Notable returns the union of slowest-k and per-class exemplars, sorted
// by injection index, deduplicated.
func (s *InjectionSet) Notable() []Injection {
	if s == nil {
		return nil
	}
	seen := make(map[int64]bool, len(s.slowest)+len(s.order))
	out := make([]Injection, 0, len(s.slowest)+len(s.order))
	for _, inj := range s.slowest {
		if !seen[inj.Index] {
			seen[inj.Index] = true
			out = append(out, inj)
		}
	}
	for _, class := range s.order {
		inj := s.classes[class]
		if !seen[inj.Index] {
			seen[inj.Index] = true
			out = append(out, inj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// defaultFlight mirrors defaultReg/defaultTracer: CLIs install a recorder
// at startup so it is on even when tracing and metrics are off.
var defaultFlight atomic.Pointer[Flight]

// DefaultFlight returns the process-wide flight recorder (nil when none
// installed — every method on the nil recorder no-ops).
func DefaultFlight() *Flight { return defaultFlight.Load() }

// SetDefaultFlight installs the process-wide flight recorder.
func SetDefaultFlight(f *Flight) { defaultFlight.Store(f) }

// DumpDefaultFlight writes the default recorder's text dump — CLIs call
// it on abnormal exit so the last spans before a failure are not lost.
// No-op when no recorder is installed or it recorded nothing: a flag
// error that dies before any work should not print an empty dump.
func DumpDefaultFlight(w io.Writer) {
	f := DefaultFlight()
	if f == nil {
		return
	}
	if v := f.View(); v.SpansTotal == 0 && v.InjectionsTotal == 0 {
		return
	}
	f.WriteText(w)
}
