package obs

import (
	"testing"
	"time"
)

// disabledCounter lives in a package var so the compiler cannot prove it
// nil and fold the instrumented loop away.
var disabledCounter *Counter

var disabledTracer *Tracer

// TestDisabledOverheadUnderNoise is the `make bench-obs` assertion: the
// disabled path — a nil-handle Add in a hot loop — must cost no more than
// a few nanoseconds per operation, i.e. stay under the noise floor of the
// interpreter's per-instruction cost (tens of ns). The bound is generous
// (25ns/op) so the test never flakes on slow or contended machines while
// still catching an accidental allocation, lock or map lookup on the
// disabled path.
func TestDisabledOverheadUnderNoise(t *testing.T) {
	const iters = 20_000_000
	measure := func() time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			disabledCounter.Add(1)
		}
		return time.Since(start)
	}
	// Warm up once, then take the best of three to shed scheduler noise.
	best := measure()
	for i := 0; i < 2; i++ {
		if d := measure(); d < best {
			best = d
		}
	}
	perOp := best / iters
	t.Logf("disabled counter add: %v/op", perOp)
	if perOp > 25*time.Nanosecond {
		t.Errorf("disabled-path counter add costs %v/op, want <= 25ns", perOp)
	}
}

func BenchmarkDisabledCounterAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		disabledCounter.Add(1)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := disabledTracer.Start("phase")
		sp.Add("n", 1)
		sp.End()
	}
}

func BenchmarkDisabledRegistryLookup(b *testing.B) {
	var r *Registry
	for i := 0; i < b.N; i++ {
		r.Counter("epvf_interp_runs_total").Inc()
	}
}

func BenchmarkEnabledCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("epvf_bench_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledLookupAndAdd(b *testing.B) {
	r := NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("epvf_bench_total", "outcome", "crash").Inc()
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("epvf_bench_seconds", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 1e-4)
	}
}
