// Package obs is the stdlib-only observability layer of the reproduction:
// a metrics registry (atomic counters, gauges and fixed-bucket histograms
// with labeled families, Prometheus-text and JSON encoders), a phase tracer
// (nestable spans recording wall time and allocation deltas), and an
// opt-in net/http introspection server exposing /metrics, /debug/pprof,
// expvar and registrable JSON status views.
//
// Everything is zero-cost when disabled: the package-level default registry
// and tracer are nil until a CLI enables them, and every method is nil-safe
// — a nil *Registry hands out nil *Counter/*Gauge/*Histogram handles whose
// operations are single-branch no-ops, so instrumented hot paths pay one
// predictable nil check.
//
// Metric names follow the convention epvf_<layer>_<name>, with counters
// suffixed _total and histograms measuring seconds.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// reset zeroes the counter (used by Registry.Reset and per-campaign
// rebinding; Prometheus consumers treat it as an ordinary counter reset).
func (c *Counter) reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is a metric that can go up and down, stored as float64 bits. A nil
// Gauge ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// bounds in ascending order; an implicit +Inf bucket catches the rest. A
// nil Histogram ignores all operations.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, non-cumulative
	total   atomic.Int64
	sumBits atomic.Uint64
}

// LatencyBuckets is the default bucket layout for second-denominated
// latency histograms: 5µs to 10s, roughly logarithmic.
var LatencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sumBits.Store(0)
}

// metric kinds.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// series is one registered (name, labels) metric instance.
type series struct {
	name   string
	key    string // name + rendered labels, the registry map key
	labels [][2]string
	kind   string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds labeled metric families. All methods are safe for
// concurrent use, and all are no-ops on a nil *Registry (the disabled
// default).
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// seriesKey renders name plus sorted k="v" label pairs. kv is alternating
// key, value; an odd trailing key is ignored.
func seriesKey(name string, kv []string) (string, [][2]string) {
	if len(kv) < 2 {
		return name, nil
	}
	labels := make([][2]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		labels = append(labels, [2]string{kv[i], kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i][0] < labels[j][0] })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l[0], l[1])
	}
	b.WriteByte('}')
	return b.String(), labels
}

// lookup returns the series for key, creating it via init when absent.
func (r *Registry) lookup(name, kind string, kv []string, init func(s *series)) *series {
	key, labels := seriesKey(name, kv)
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s == nil {
		r.mu.Lock()
		if s = r.series[key]; s == nil {
			s = &series{name: name, key: key, labels: labels, kind: kind}
			init(s)
			r.series[key] = s
		}
		r.mu.Unlock()
	}
	if s.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", key, s.kind, kind))
	}
	return s
}

// Counter returns the counter for name and alternating label key/value
// pairs, registering it on first use. Nil receiver returns a nil (no-op)
// counter.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, kv, func(s *series) { s.c = &Counter{} }).c
}

// Gauge returns the gauge for name and label pairs.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, kv, func(s *series) { s.g = &Gauge{} }).g
}

// Histogram returns the histogram for name and label pairs. buckets are
// ascending upper bounds; nil means LatencyBuckets. The bucket layout is
// fixed by the first registration: a later caller requesting a different
// explicit layout still gets the existing histogram, but the conflict is
// recorded on the epvf_obs_schema_conflicts counter (labeled by metric
// name) instead of being silently ignored.
func (r *Registry) Histogram(name string, buckets []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.lookup(name, kindHist, kv, func(s *series) {
		if buckets == nil {
			buckets = LatencyBuckets
		}
		bounds := append([]float64(nil), buckets...)
		s.h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}).h
	// nil buckets means "whatever layout exists" and never conflicts.
	if buckets != nil && !equalBounds(h.bounds, buckets) {
		r.Counter("epvf_obs_schema_conflicts", "metric", name).Inc()
	}
	return h
}

// equalBounds reports whether two bucket layouts are identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reset zeroes every registered series without invalidating the handles
// instrumented code holds.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, s := range r.series {
		switch s.kind {
		case kindCounter:
			s.c.reset()
		case kindGauge:
			s.g.Set(0)
		case kindHist:
			s.h.reset()
		}
	}
}

// ResetLabeled zeroes every series carrying the label key=value, leaving
// other series untouched. Campaign monitors use it to restart one plan's
// series when an invocation begins, so a replayed log never double-counts.
func (r *Registry) ResetLabeled(key, value string) {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, s := range r.series {
		matched := false
		for _, l := range s.labels {
			if l[0] == key && l[1] == value {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		switch s.kind {
		case kindCounter:
			s.c.reset()
		case kindGauge:
			s.g.Set(0)
		case kindHist:
			s.h.reset()
		}
	}
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// Le is the inclusive upper bound; +Inf for the overflow bucket.
	Le float64 `json:"le"`
	// Count is the cumulative count of observations <= Le.
	Count int64 `json:"count"`
}

// MarshalJSON encodes the overflow bound as the string "+Inf" (the
// Prometheus convention): encoding/json rejects infinities, and a bare
// json.Marshal failure inside expvar.Func would silently render the
// whole /debug/vars document invalid.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.Le, 1) {
		v, err := json.Marshal(b.Le)
		if err != nil {
			return nil, err
		}
		le = string(v)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// Sample is the frozen value of one series.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	// Value carries counter and gauge values.
	Value float64 `json:"value"`
	// Count, Sum and Buckets carry histogram state.
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`

	key string
}

// Snapshot is a point-in-time copy of a registry, sorted by series key.
type Snapshot struct {
	Samples []Sample `json:"samples"`
}

// Snapshot freezes the registry. Nil receiver yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	for _, s := range r.series {
		smp := Sample{Name: s.name, Kind: s.kind, key: s.key}
		if len(s.labels) > 0 {
			smp.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				smp.Labels[l[0]] = l[1]
			}
		}
		switch s.kind {
		case kindCounter:
			smp.Value = float64(s.c.Value())
		case kindGauge:
			smp.Value = s.g.Value()
		case kindHist:
			smp.Count = s.h.Count()
			smp.Sum = s.h.Sum()
			cum := int64(0)
			for i := range s.h.counts {
				cum += s.h.counts[i].Load()
				le := math.Inf(1)
				if i < len(s.h.bounds) {
					le = s.h.bounds[i]
				}
				smp.Buckets = append(smp.Buckets, Bucket{Le: le, Count: cum})
			}
		}
		snap.Samples = append(snap.Samples, smp)
	}
	r.mu.RUnlock()
	sort.Slice(snap.Samples, func(i, j int) bool {
		if snap.Samples[i].Name != snap.Samples[j].Name {
			return snap.Samples[i].Name < snap.Samples[j].Name
		}
		return snap.Samples[i].key < snap.Samples[j].key
	})
	return snap
}

// match reports whether the sample carries every given label pair.
func (s *Sample) match(kv []string) bool {
	for i := 0; i+1 < len(kv); i += 2 {
		if s.Labels[kv[i]] != kv[i+1] {
			return false
		}
	}
	return true
}

// Counter returns the value of the exactly-labeled counter (or gauge),
// summing every series of the family that carries the given label pairs —
// pass all labels for an exact series, fewer to aggregate.
func (s *Snapshot) Counter(name string, kv ...string) int64 {
	var total int64
	for i := range s.Samples {
		smp := &s.Samples[i]
		if smp.Name == name && smp.Kind != kindHist && smp.match(kv) {
			total += int64(smp.Value)
		}
	}
	return total
}

// Gauge returns the value of the first matching gauge.
func (s *Snapshot) Gauge(name string, kv ...string) float64 {
	for i := range s.Samples {
		smp := &s.Samples[i]
		if smp.Name == name && smp.Kind == kindGauge && smp.match(kv) {
			return smp.Value
		}
	}
	return 0
}

// labelString renders the {k="v",...} suffix of a sample, with extra pairs
// appended (for histogram le labels).
func labelString(s *Sample, extra ...string) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, s.Labels[k]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (one # TYPE line per family, histograms as _bucket/_sum/_count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus encodes a frozen snapshot.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for i := range s.Samples {
		smp := &s.Samples[i]
		if smp.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", smp.Name, smp.Kind); err != nil {
				return err
			}
			lastName = smp.Name
		}
		switch smp.Kind {
		case kindHist:
			for _, b := range smp.Buckets {
				le := "+Inf"
				if !math.IsInf(b.Le, 1) {
					le = fmt.Sprintf("%g", b.Le)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", smp.Name, labelString(smp, "le", le), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
				smp.Name, labelString(smp), smp.Sum, smp.Name, labelString(smp), smp.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", smp.Name, labelString(smp), formatValue(smp.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON encodes the registry snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// defaultReg is the process-wide registry; nil (disabled) until a CLI
// enables observability.
var defaultReg atomic.Pointer[Registry]

// Default returns the process-wide registry, nil when observability is
// disabled. The nil registry is fully usable: every method no-ops.
func Default() *Registry { return defaultReg.Load() }

// SetDefault installs the process-wide registry (nil disables).
func SetDefault(r *Registry) { defaultReg.Store(r) }
