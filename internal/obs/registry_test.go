package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("epvf_x_total")
	g := r.Gauge("epvf_x")
	h := r.Histogram("epvf_x_seconds", nil)
	c.Add(3)
	c.Inc()
	g.Set(2)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	r.Reset()
	if snap := r.Snapshot(); len(snap.Samples) != 0 {
		t.Errorf("nil registry snapshot has %d samples", len(snap.Samples))
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("epvf_test_runs_total", "outcome", "crash")
	c.Add(4)
	c.Inc()
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same instance regardless of pair order.
	c2 := r.Counter("epvf_test_runs_total", "outcome", "crash")
	if c2 != c {
		t.Error("same series returned a different handle")
	}
	g := r.Gauge("epvf_test_depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %g, want 2", got)
	}
	h := r.Histogram("epvf_test_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("hist count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Errorf("hist sum = %g, want 56.05", h.Sum())
	}

	snap := r.Snapshot()
	if got := snap.Counter("epvf_test_runs_total", "outcome", "crash"); got != 5 {
		t.Errorf("snapshot counter = %d, want 5", got)
	}
	if got := snap.Gauge("epvf_test_depth"); got != 2 {
		t.Errorf("snapshot gauge = %g, want 2", got)
	}
	var hist *Sample
	for i := range snap.Samples {
		if snap.Samples[i].Name == "epvf_test_seconds" {
			hist = &snap.Samples[i]
		}
	}
	if hist == nil {
		t.Fatal("histogram missing from snapshot")
	}
	wantCum := []int64{1, 3, 4, 5} // le 0.1, 1, 10, +Inf
	for i, b := range hist.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCum[i])
		}
	}
}

func TestLabelAggregation(t *testing.T) {
	r := NewRegistry()
	r.Counter("epvf_runs_total", "id", "a", "outcome", "crash").Add(2)
	r.Counter("epvf_runs_total", "id", "a", "outcome", "SDC").Add(3)
	r.Counter("epvf_runs_total", "id", "b", "outcome", "crash").Add(7)
	snap := r.Snapshot()
	if got := snap.Counter("epvf_runs_total", "id", "a"); got != 5 {
		t.Errorf("id=a total = %d, want 5", got)
	}
	if got := snap.Counter("epvf_runs_total", "outcome", "crash"); got != 9 {
		t.Errorf("outcome=crash total = %d, want 9", got)
	}
	if got := snap.Counter("epvf_runs_total"); got != 12 {
		t.Errorf("family total = %d, want 12", got)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("epvf_a_total")
	g := r.Gauge("epvf_b")
	h := r.Histogram("epvf_c_seconds", []float64{1})
	c.Add(5)
	g.Set(5)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("reset did not zero values")
	}
	// Handles stay live after reset.
	c.Inc()
	if r.Snapshot().Counter("epvf_a_total") != 1 {
		t.Error("counter handle dead after reset")
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("epvf_interp_runs_total").Add(3)
	r.Counter("epvf_campaign_runs_total", "outcome", "crash", "id", "abc").Add(2)
	r.Gauge("epvf_campaign_shards_complete", "id", "abc").Set(4)
	r.Histogram("epvf_campaign_run_seconds", []float64{0.1, 1}, "id", "abc").Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE epvf_interp_runs_total counter",
		"epvf_interp_runs_total 3",
		`epvf_campaign_runs_total{id="abc",outcome="crash"} 2`,
		"# TYPE epvf_campaign_shards_complete gauge",
		`epvf_campaign_shards_complete{id="abc"} 4`,
		"# TYPE epvf_campaign_run_seconds histogram",
		`epvf_campaign_run_seconds_bucket{id="abc",le="0.1"} 0`,
		`epvf_campaign_run_seconds_bucket{id="abc",le="1"} 1`,
		`epvf_campaign_run_seconds_bucket{id="abc",le="+Inf"} 1`,
		`epvf_campaign_run_seconds_count{id="abc"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("epvf_x_total", "k", "v").Add(9)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := snap.Counter("epvf_x_total", "k", "v"); got != 9 {
		t.Errorf("round-tripped counter = %d, want 9", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("epvf_x_total")
	defer func() {
		if recover() == nil {
			t.Error("gauge registration over a counter did not panic")
		}
	}()
	r.Gauge("epvf_x_total")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("epvf_conc_total", "w", string(rune('a'+w%4))).Inc()
				r.Gauge("epvf_conc").Add(1)
				r.Histogram("epvf_conc_seconds", []float64{0.5}).Observe(float64(i%2) * 0.9)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counter("epvf_conc_total"); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := snap.Gauge("epvf_conc"); got != 8000 {
		t.Errorf("concurrent gauge = %g, want 8000", got)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry must start disabled")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Error("SetDefault did not install")
	}
	Default().Counter("epvf_default_total").Inc()
	if r.Snapshot().Counter("epvf_default_total") != 1 {
		t.Error("default registry did not record")
	}
}

// TestHistogramBucketConflictRecorded is the schema-conflict regression
// test: re-registering a histogram with a different explicit bucket
// layout returns the existing histogram (first registration wins) but
// records the conflict on epvf_obs_schema_conflicts instead of silently
// ignoring it.
func TestHistogramBucketConflictRecorded(t *testing.T) {
	r := NewRegistry()
	first := r.Histogram("epvf_conflict_seconds", []float64{1, 2, 3})
	conflicts := r.Counter("epvf_obs_schema_conflicts", "metric", "epvf_conflict_seconds")

	// Same explicit layout, and the nil "whatever exists" layout: no
	// conflict recorded.
	if h := r.Histogram("epvf_conflict_seconds", []float64{1, 2, 3}); h != first {
		t.Error("same layout must return the existing histogram")
	}
	if h := r.Histogram("epvf_conflict_seconds", nil); h != first {
		t.Error("nil layout must return the existing histogram")
	}
	if conflicts.Value() != 0 {
		t.Errorf("no-conflict registrations recorded %d conflicts", conflicts.Value())
	}

	// Conflicting layout: the existing histogram (with its observations
	// intact) is returned, and the conflict is counted per metric name.
	first.Observe(1.5)
	h := r.Histogram("epvf_conflict_seconds", []float64{10, 20})
	if h != first {
		t.Error("conflicting layout must still return the existing histogram")
	}
	if h.Count() != 1 {
		t.Errorf("returned histogram lost its observations: count %d", h.Count())
	}
	if conflicts.Value() != 1 {
		t.Errorf("conflict counter = %d, want 1", conflicts.Value())
	}
	r.Histogram("epvf_conflict_seconds", []float64{1, 2})
	if conflicts.Value() != 2 {
		t.Errorf("conflict counter after length mismatch = %d, want 2", conflicts.Value())
	}
	// The conflict surfaces in the Prometheus exposition.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `epvf_obs_schema_conflicts{metric="epvf_conflict_seconds"} 2`) {
		t.Errorf("conflict counter missing from exposition:\n%s", buf.String())
	}
}

// TestSnapshotMarshalsWithHistogram: a snapshot containing a histogram
// must survive json.Marshal — the overflow bucket's +Inf bound encodes
// as the string "+Inf" instead of failing the whole document (expvar's
// /debug/vars renders an empty value on marshal error, which makes the
// JSON invalid).
func TestSnapshotMarshalsWithHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("epvf_test_seconds", []float64{0.1, 1}).Observe(5)
	b, err := json.Marshal(r.Snapshot().Samples)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(b), `"le":"+Inf"`) {
		t.Fatalf("overflow bucket not encoded as +Inf string: %s", b)
	}
	var back []Sample
	if err := json.Unmarshal(bytes.Replace(b, []byte(`"+Inf"`), []byte(`1e308`), 1), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}
