package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the opt-in live-introspection endpoint: /metrics (Prometheus
// text, or JSON with ?format=json), /healthz (liveness plus registered
// stats sections), /debug/pprof/*, /debug/vars (expvar) and any JSON
// status views registered with HandleJSON (the campaign engine registers
// /campaign).
type Server struct {
	reg     *Registry
	mux     *http.ServeMux
	ln      net.Listener
	srv     *http.Server
	started time.Time

	healthMu sync.Mutex
	health   []healthSection
	degraded func() []string
}

// healthSection is one named stats provider on /healthz (e.g. "cache" →
// cache.Stats, "fleet" → coordinator status).
type healthSection struct {
	name string
	fn   func() any
}

// expvarOnce guards the one-time expvar publication of the obs snapshot
// (expvar.Publish panics on duplicate names).
var expvarOnce sync.Once

// NewServer binds addr (host:port; :0 picks a free port) and builds the
// route table, but does not serve until Start.
func NewServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, mux: http.NewServeMux(), ln: ln, started: time.Now()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/debug/flight", s.handleFlight)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/", s.handleIndex)
	expvarOnce.Do(func() {
		expvar.Publish("epvf_obs", expvar.Func(func() any {
			return s.reg.Snapshot().Samples
		}))
	})
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return s, nil
}

// Addr returns the bound address (useful with :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HandleJSON registers a view that renders fn's value as JSON on every
// request.
func (s *Server) HandleJSON(path string, fn func() (any, error)) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, req *http.Request) {
		v, err := fn()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
}

// Handle registers an arbitrary handler (e.g. the /attr drill-down
// endpoint, which needs request access for its query parameters —
// HandleJSON deliberately hides the request).
func (s *Server) Handle(path string, h http.Handler) {
	s.mux.Handle(path, h)
}

// AddHealth attaches a named stats section to /healthz: fn's value is
// rendered under that key on every health probe (e.g. cache hit/byte
// stats, coordinator fleet state). Safe to call before or after Start.
func (s *Server) AddHealth(name string, fn func() any) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	s.health = append(s.health, healthSection{name: name, fn: fn})
}

// SetDegraded installs the degradation probe: when fn returns a
// non-empty list (the names of firing alert rules), /healthz reports
// status "degraded" and the list instead of flat "ok". The dashboard
// wires the alert engine in here.
func (s *Server) SetDegraded(fn func() []string) {
	s.healthMu.Lock()
	s.degraded = fn
	s.healthMu.Unlock()
}

// handleHealth is the liveness endpoint: a process that answers it is up,
// and the payload carries uptime plus every registered stats section —
// the cache and fleet state a load balancer or operator needs before
// routing traffic at a daemon.
func (s *Server) handleHealth(w http.ResponseWriter, req *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	}
	s.healthMu.Lock()
	sections := append([]healthSection(nil), s.health...)
	degraded := s.degraded
	s.healthMu.Unlock()
	if degraded != nil {
		if firing := degraded(); len(firing) > 0 {
			body["status"] = "degraded"
			body["firing"] = firing
		}
	}
	for _, sec := range sections {
		body[sec.name] = sec.fn()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// Start serves in a background goroutine until Close or Shutdown.
func (s *Server) Start() {
	go s.srv.Serve(s.ln)
}

// Close shuts the listener down immediately, aborting in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains gracefully: the listener stops accepting, in-flight
// requests (a /metrics scrape, a pprof profile) run to completion, and
// only then does the server stop — or ctx expires, whichever is first.
// CLIs use it so a drain never truncates a scrape mid-body.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// handleFlight dumps the process-wide flight recorder: JSON by default,
// the text rendering with ?format=text. 404 when no recorder is
// installed (CLIs install one at startup, so in practice it is always
// on).
func (s *Server) handleFlight(w http.ResponseWriter, req *http.Request) {
	f := DefaultFlight()
	if f == nil {
		http.Error(w, "flight recorder not installed", http.StatusNotFound)
		return
	}
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		f.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(f.View())
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "epvf observability endpoint")
	fmt.Fprintln(w, "  /metrics            Prometheus text format (?format=json for JSON)")
	fmt.Fprintln(w, "  /healthz            liveness + registered stats sections (cache, fleet)")
	fmt.Fprintln(w, "  /campaign           live campaign status (when a campaign is running)")
	fmt.Fprintln(w, "  /attr               attribution drill-down (when the ledger is enabled; ?func=, ?instr=, ?format=text)")
	fmt.Fprintln(w, "  /dashboard          live HTML dashboard (when telemetry is mounted)")
	fmt.Fprintln(w, "  /ts                 metric time-series rings (?res=1s|10s|60s, ?prefix=)")
	fmt.Fprintln(w, "  /events             SSE stream: metrics, campaign, fleet, span, alert events")
	fmt.Fprintln(w, "  /alerts             alert rule states + transition log")
	fmt.Fprintln(w, "  /debug/flight       flight recorder: recent spans + shard exemplars (?format=text)")
	fmt.Fprintln(w, "  /debug/pprof/       CPU, heap, goroutine profiles")
	fmt.Fprintln(w, "  /debug/vars         expvar (includes the epvf_obs snapshot)")
}
