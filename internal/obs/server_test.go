package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func startTestServer(t *testing.T, reg *Registry) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("epvf_interp_runs_total").Add(7)
	srv := startTestServer(t, reg)
	srv.HandleJSON("/campaign", func() (any, error) {
		return map[string]int{"done": 12}, nil
	})
	srv.Start()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "epvf_interp_runs_total 7") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	code, body = get(t, base+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json: code %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.Counter("epvf_interp_runs_total") != 7 {
		t.Error("JSON metrics missing counter")
	}

	code, body = get(t, base+"/campaign")
	if code != http.StatusOK || !strings.Contains(body, `"done": 12`) {
		t.Errorf("/campaign: code %d body %q", code, body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
	}
	code, _ = get(t, base+"/debug/pprof/heap?debug=1")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/heap: code %d", code)
	}
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code %d", code)
	}
	code, body = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code %d body %q", code, body)
	}
	code, _ = get(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path: code %d, want 404", code)
	}
}

func TestHandleJSONError(t *testing.T) {
	srv := startTestServer(t, NewRegistry())
	srv.HandleJSON("/broken", func() (any, error) {
		return nil, fmt.Errorf("no campaign running")
	})
	srv.Start()
	code, body := get(t, "http://"+srv.Addr()+"/broken")
	if code != http.StatusInternalServerError || !strings.Contains(body, "no campaign running") {
		t.Errorf("error view: code %d body %q", code, body)
	}
}

func TestShutdownDrainsInFlightRequests(t *testing.T) {
	// A scrape that is mid-handler when Shutdown starts must complete with
	// a full body; Shutdown must then return without error.
	srv := startTestServer(t, NewRegistry())
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.HandleJSON("/slow", func() (any, error) {
		close(entered)
		<-release
		return map[string]string{"state": "drained"}, nil
	})
	srv.Start()

	type scrape struct {
		code int
		body string
	}
	got := make(chan scrape, 1)
	go func() {
		code, body := get(t, "http://"+srv.Addr()+"/slow")
		got <- scrape{code, body}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Graceful shutdown must wait for the in-flight handler.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	s := <-got
	if s.code != http.StatusOK || !strings.Contains(s.body, "drained") {
		t.Errorf("in-flight scrape truncated by shutdown: code %d body %q", s.code, s.body)
	}
	// After the drain, new connections are refused.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

func TestServerLiveUpdates(t *testing.T) {
	reg := NewRegistry()
	srv := startTestServer(t, reg)
	srv.Start()
	base := "http://" + srv.Addr()
	c := reg.Counter("epvf_live_total")
	_, body := get(t, base+"/metrics")
	if !strings.Contains(body, "epvf_live_total 0") {
		t.Errorf("initial scrape: %q", body)
	}
	c.Add(41)
	c.Inc()
	_, body = get(t, base+"/metrics")
	if !strings.Contains(body, "epvf_live_total 42") {
		t.Errorf("live scrape: %q", body)
	}
}

// TestConcurrentRegistrationUnderLoad hammers /healthz and freshly
// registered views while sections and handlers are still being added:
// daemons register cache/fleet sections after Start, so registration
// must be safe against in-flight probes (run under -race).
func TestConcurrentRegistrationUnderLoad(t *testing.T) {
	srv := startTestServer(t, NewRegistry())
	srv.Start()
	base := "http://" + srv.Addr()
	client := &http.Client{Timeout: 5 * time.Second}

	const registrars = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Request load: continuous /healthz probes plus hits on the views the
	// registrars have already added.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				url := base + "/healthz"
				if n%2 == 1 {
					url = fmt.Sprintf("%s/view/%d/%d", base, n%registrars, n%8)
				}
				resp, err := client.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// A view may 404 before its registrar lands; /healthz never may.
				if strings.HasSuffix(url, "/healthz") && resp.StatusCode != http.StatusOK {
					t.Errorf("/healthz: code %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	// Registration load: handlers and health sections appear while the
	// probes run.
	for r := 0; r < registrars; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				path := fmt.Sprintf("/view/%d/%d", r, i)
				srv.Handle(path, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
					fmt.Fprintf(w, "view %s", req.URL.Path)
				}))
				srv.AddHealth(fmt.Sprintf("section_%d_%d", r, i), func() any { return i })
			}
		}(r)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every registered section and view answers once the dust settles.
	code, body := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz after churn: code %d", code)
	}
	var sections map[string]any
	if err := json.Unmarshal([]byte(body), &sections); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	for r := 0; r < registrars; r++ {
		for i := 0; i < 8; i++ {
			if _, ok := sections[fmt.Sprintf("section_%d_%d", r, i)]; !ok {
				t.Errorf("section_%d_%d missing from /healthz", r, i)
			}
		}
	}
	code, body = get(t, base+"/view/0/0")
	if code != http.StatusOK || !strings.Contains(body, "view /view/0/0") {
		t.Errorf("registered view: code %d body %q", code, body)
	}
}

func TestHealthz(t *testing.T) {
	srv := startTestServer(t, NewRegistry())
	srv.AddHealth("cache", func() any {
		return map[string]int{"mem_entries": 3}
	})
	srv.Start()
	srv.AddHealth("fleet", func() any { return "idle" })

	code, body := get(t, "http://"+srv.Addr()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: code %d", code)
	}
	var got struct {
		Status        string         `json:"status"`
		UptimeSeconds float64        `json:"uptime_seconds"`
		Cache         map[string]int `json:"cache"`
		Fleet         string         `json:"fleet"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, body)
	}
	if got.Status != "ok" {
		t.Errorf("status = %q, want ok", got.Status)
	}
	if got.UptimeSeconds < 0 {
		t.Errorf("uptime = %v, want >= 0", got.UptimeSeconds)
	}
	if got.Cache["mem_entries"] != 3 {
		t.Errorf("cache section = %v", got.Cache)
	}
	// Sections registered after Start serve too.
	if got.Fleet != "idle" {
		t.Errorf("fleet section = %q", got.Fleet)
	}
}
