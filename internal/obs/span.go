package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/report"
)

// SpanRecord is one completed span: a named phase with wall time, heap
// allocation deltas (runtime.ReadMemStats) and optional per-span counters.
// Correlated spans additionally carry trace identity (TraceID/SpanID/
// ParentID) and the process that produced them; plain phase spans leave
// those fields empty and everything downstream treats them as before.
type SpanRecord struct {
	Name string `json:"name"`
	// TraceID groups every span of one campaign/analyze request, across
	// processes. SpanID identifies this span inside the trace; ParentID
	// links it to its parent ("" for roots). Proc names the producing
	// process ("coordinator", "worker-a", "epvf-serve").
	TraceID  string    `json:"trace,omitempty"`
	SpanID   string    `json:"span,omitempty"`
	ParentID string    `json:"parent,omitempty"`
	Proc     string    `json:"proc,omitempty"`
	Depth    int       `json:"depth"`
	Start    time.Time `json:"start"`
	// WallNS is the span duration under the tracer's clock.
	WallNS int64 `json:"wall_ns"`
	// Allocs and AllocBytes are the heap allocation count/byte deltas
	// across the span (process-wide, so concurrent work is attributed
	// too — treat them as an upper bound).
	Allocs     uint64           `json:"allocs"`
	AllocBytes uint64           `json:"alloc_bytes"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// Tracer records nestable phase spans. A nil *Tracer (the disabled
// default) hands out nil *Span handles whose methods no-op, so
// instrumented pipelines pay one nil check per phase.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer // JSONL sink, may be nil
	now    func() time.Time
	proc   string
	retain int // when > 0, keep only the most recent retain spans in memory
	spans  []SpanRecord
	drops  atomic.Int64
}

// NewTracer returns a tracer. w, when non-nil, receives one JSON line per
// completed span.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, now: time.Now}
}

// SetProc names the producing process; every span recorded afterwards
// carries it (ingested remote spans keep their own).
func (t *Tracer) SetProc(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.proc = name
	t.mu.Unlock()
}

// SetRetain bounds the in-memory span list to the most recent n spans
// (0 = unbounded, the default). Long-lived daemons set it so the tracer
// cannot grow without bound; the JSONL sink still sees every span.
func (t *Tracer) SetRetain(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.retain = n
	t.mu.Unlock()
}

// Drops returns how many span JSONL lines were lost to sink errors.
func (t *Tracer) Drops() int64 {
	if t == nil {
		return 0
	}
	return t.drops.Load()
}

// SetClock injects the time source (tests; the campaign progress reporter
// shares the same seam).
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Tracer) clock() time.Time {
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	return now()
}

// Span is one in-flight phase. Methods on a nil Span no-op.
type Span struct {
	t        *Tracer
	name     string
	ctx      SpanContext
	parentID string
	depth    int
	start    time.Time
	mallocs0 uint64
	bytes0   uint64
	counters map[string]int64
	mu       sync.Mutex
	ended    bool
	rec      SpanRecord // valid once ended
}

// Start opens a root span under a fresh random trace ID.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	tid := NewTraceID()
	return t.open(name, 0, SpanContext{TraceID: tid, SpanID: NewSpanID()}, "")
}

// StartRemote opens a span as the child of a remote parent (the context
// extracted from an incoming request's trace header). An invalid parent
// degrades to Start: a fresh root.
func (t *Tracer) StartRemote(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.Start(name)
	}
	return t.open(name, 0, SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID()}, parent.SpanID)
}

// StartExact opens a span with a caller-chosen identity — the
// deterministic-ID discipline (campaign roots, shard spans) where every
// process must derive the same span ID. parentID may be "" for roots.
func (t *Tracer) StartExact(name string, ctx SpanContext, parentID string) *Span {
	if t == nil {
		return nil
	}
	return t.open(name, 0, ctx, parentID)
}

func (t *Tracer) open(name string, depth int, ctx SpanContext, parentID string) *Span {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Span{
		t:        t,
		name:     name,
		ctx:      ctx,
		parentID: parentID,
		depth:    depth,
		start:    t.clock(),
		mallocs0: ms.Mallocs,
		bytes0:   ms.TotalAlloc,
	}
}

// Child opens a nested span one level deeper, inheriting the trace and
// parented to sp.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	ctx := SpanContext{TraceID: sp.ctx.TraceID, SpanID: NewSpanID()}
	return sp.t.open(name, sp.depth+1, ctx, sp.ctx.SpanID)
}

// ChildExact opens a nested span with a caller-chosen span ID
// (deterministic shard/injection spans).
func (sp *Span) ChildExact(name, spanID string) *Span {
	if sp == nil {
		return nil
	}
	ctx := SpanContext{TraceID: sp.ctx.TraceID, SpanID: spanID}
	return sp.t.open(name, sp.depth+1, ctx, sp.ctx.SpanID)
}

// Context returns the span's portable identity (zero for nil spans) —
// what InjectTraceHeader stamps on outgoing requests.
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return sp.ctx
}

// Add accumulates a named per-span counter (node counts, bit counts, ...).
func (sp *Span) Add(counter string, n int64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.counters == nil {
		sp.counters = make(map[string]int64)
	}
	sp.counters[counter] += n
	sp.mu.Unlock()
}

// End closes the span, recording it on the tracer and emitting its JSONL
// line. End is idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	counters := sp.counters
	sp.mu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec := SpanRecord{
		Name:       sp.name,
		TraceID:    sp.ctx.TraceID,
		SpanID:     sp.ctx.SpanID,
		ParentID:   sp.parentID,
		Proc:       sp.t.procName(),
		Depth:      sp.depth,
		Start:      sp.start,
		WallNS:     sp.t.clock().Sub(sp.start).Nanoseconds(),
		Allocs:     ms.Mallocs - sp.mallocs0,
		AllocBytes: ms.TotalAlloc - sp.bytes0,
		Counters:   counters,
	}
	sp.mu.Lock()
	sp.rec = rec
	sp.mu.Unlock()
	sp.t.record(rec)
}

// EndRecord ends the span (idempotent) and returns its completed record
// — what a daemon sends back to the requesting process so the caller's
// trace includes the remote work. Zero record for nil spans.
func (sp *Span) EndRecord() SpanRecord {
	if sp == nil {
		return SpanRecord{}
	}
	sp.End()
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.rec
}

// Ingest records remote spans verbatim (JSONL sink, in-memory list,
// flight recorder): the coordinator ingests worker shard subtrees, a
// -server client ingests the daemon's handling spans.
func (t *Tracer) Ingest(recs ...SpanRecord) {
	if t == nil {
		return
	}
	for _, rec := range recs {
		t.record(rec)
	}
}

func (t *Tracer) procName() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.proc
}

// spanSink is the process-wide completed-span hook: the live-telemetry
// layer installs a function fanning spans onto the SSE stream. Kept as
// a generic func pointer so obs does not depend on the ts package.
var spanSink atomic.Pointer[func(SpanRecord)]

// SetSpanSink installs (or, with nil, clears) the process-wide
// completed-span hook. It returns the hook's remover, which clears the
// sink only if it is still this installation — a later mount is never
// clobbered by an earlier unmount.
func SetSpanSink(fn func(SpanRecord)) (remove func()) {
	if fn == nil {
		spanSink.Store(nil)
		return func() {}
	}
	p := &fn
	spanSink.Store(p)
	return func() { spanSink.CompareAndSwap(p, nil) }
}

// record stores one completed span and emits its JSONL line. A sink
// write error increments the epvf_obs_trace_drops counter and the tracer
// keeps working — one bad write must not poison subsequent spans.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	if t.retain > 0 && len(t.spans) > t.retain {
		t.spans = append(t.spans[:0], t.spans[len(t.spans)-t.retain:]...)
	}
	w := t.w
	t.mu.Unlock()
	DefaultFlight().Record(rec)
	if sink := spanSink.Load(); sink != nil {
		(*sink)(rec)
	}
	if w == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		t.drop()
		return
	}
	t.mu.Lock()
	_, werr := w.Write(append(line, '\n'))
	t.mu.Unlock()
	if werr != nil {
		t.drop()
	}
}

// drop counts a span line lost to a sink error, both on the tracer and on
// the default registry's epvf_obs_trace_drops counter.
func (t *Tracer) drop() {
	t.drops.Add(1)
	Default().Counter("epvf_obs_trace_drops").Add(1)
}

// Spans returns a copy of every completed span in end order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// PhaseStat aggregates every completed span of one name.
type PhaseStat struct {
	Name       string           `json:"name"`
	Count      int64            `json:"count"`
	WallNS     int64            `json:"wall_ns"`
	Allocs     uint64           `json:"allocs"`
	AllocBytes uint64           `json:"alloc_bytes"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// Aggregate folds completed spans into per-phase totals, sorted by
// descending wall time.
func (t *Tracer) Aggregate() []PhaseStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	byName := make(map[string]*PhaseStat)
	order := []string{}
	for i := range t.spans {
		rec := &t.spans[i]
		st := byName[rec.Name]
		if st == nil {
			st = &PhaseStat{Name: rec.Name}
			byName[rec.Name] = st
			order = append(order, rec.Name)
		}
		st.Count++
		st.WallNS += rec.WallNS
		st.Allocs += rec.Allocs
		st.AllocBytes += rec.AllocBytes
		for k, v := range rec.Counters {
			if st.Counters == nil {
				st.Counters = make(map[string]int64)
			}
			st.Counters[k] += v
		}
	}
	t.mu.Unlock()
	out := make([]PhaseStat, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallNS > out[j].WallNS })
	return out
}

// Summary renders the per-phase totals as a table.
func (t *Tracer) Summary() string {
	if t == nil {
		return ""
	}
	tab := report.NewTable("Phase summary", "Phase", "Spans", "Wall", "Allocs", "Alloc bytes")
	for _, st := range t.Aggregate() {
		tab.AddRow(st.Name, st.Count,
			time.Duration(st.WallNS).Round(time.Microsecond).String(),
			st.Allocs, st.AllocBytes)
	}
	return tab.String()
}

// defaultTracer mirrors defaultReg: nil until a CLI enables tracing.
var defaultTracer atomic.Pointer[Tracer]

// DefaultTracer returns the process-wide tracer (nil when disabled).
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// SetDefaultTracer installs the process-wide tracer (nil disables).
func SetDefaultTracer(t *Tracer) { defaultTracer.Store(t) }

// StartSpan opens a root span on the default tracer; nil-safe and free
// when tracing is disabled.
func StartSpan(name string) *Span { return DefaultTracer().Start(name) }
