package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/report"
)

// SpanRecord is one completed span: a named phase with wall time, heap
// allocation deltas (runtime.ReadMemStats) and optional per-span counters.
type SpanRecord struct {
	Name  string    `json:"name"`
	Depth int       `json:"depth"`
	Start time.Time `json:"start"`
	// WallNS is the span duration under the tracer's clock.
	WallNS int64 `json:"wall_ns"`
	// Allocs and AllocBytes are the heap allocation count/byte deltas
	// across the span (process-wide, so concurrent work is attributed
	// too — treat them as an upper bound).
	Allocs     uint64           `json:"allocs"`
	AllocBytes uint64           `json:"alloc_bytes"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// Tracer records nestable phase spans. A nil *Tracer (the disabled
// default) hands out nil *Span handles whose methods no-op, so
// instrumented pipelines pay one nil check per phase.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer // JSONL sink, may be nil
	now   func() time.Time
	spans []SpanRecord
}

// NewTracer returns a tracer. w, when non-nil, receives one JSON line per
// completed span.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, now: time.Now}
}

// SetClock injects the time source (tests; the campaign progress reporter
// shares the same seam).
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Tracer) clock() time.Time {
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	return now()
}

// Span is one in-flight phase. Methods on a nil Span no-op.
type Span struct {
	t        *Tracer
	name     string
	depth    int
	start    time.Time
	mallocs0 uint64
	bytes0   uint64
	counters map[string]int64
	mu       sync.Mutex
	ended    bool
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.open(name, 0)
}

func (t *Tracer) open(name string, depth int) *Span {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Span{
		t:        t,
		name:     name,
		depth:    depth,
		start:    t.clock(),
		mallocs0: ms.Mallocs,
		bytes0:   ms.TotalAlloc,
	}
}

// Child opens a nested span one level deeper.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.t.open(name, sp.depth+1)
}

// Add accumulates a named per-span counter (node counts, bit counts, ...).
func (sp *Span) Add(counter string, n int64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.counters == nil {
		sp.counters = make(map[string]int64)
	}
	sp.counters[counter] += n
	sp.mu.Unlock()
}

// End closes the span, recording it on the tracer and emitting its JSONL
// line. End is idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	counters := sp.counters
	sp.mu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec := SpanRecord{
		Name:       sp.name,
		Depth:      sp.depth,
		Start:      sp.start,
		WallNS:     sp.t.clock().Sub(sp.start).Nanoseconds(),
		Allocs:     ms.Mallocs - sp.mallocs0,
		AllocBytes: ms.TotalAlloc - sp.bytes0,
		Counters:   counters,
	}
	sp.t.record(rec)
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	w := t.w
	t.mu.Unlock()
	if w != nil {
		line, err := json.Marshal(rec)
		if err == nil {
			t.mu.Lock()
			w.Write(append(line, '\n'))
			t.mu.Unlock()
		}
	}
}

// Spans returns a copy of every completed span in end order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// PhaseStat aggregates every completed span of one name.
type PhaseStat struct {
	Name       string           `json:"name"`
	Count      int64            `json:"count"`
	WallNS     int64            `json:"wall_ns"`
	Allocs     uint64           `json:"allocs"`
	AllocBytes uint64           `json:"alloc_bytes"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// Aggregate folds completed spans into per-phase totals, sorted by
// descending wall time.
func (t *Tracer) Aggregate() []PhaseStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	byName := make(map[string]*PhaseStat)
	order := []string{}
	for i := range t.spans {
		rec := &t.spans[i]
		st := byName[rec.Name]
		if st == nil {
			st = &PhaseStat{Name: rec.Name}
			byName[rec.Name] = st
			order = append(order, rec.Name)
		}
		st.Count++
		st.WallNS += rec.WallNS
		st.Allocs += rec.Allocs
		st.AllocBytes += rec.AllocBytes
		for k, v := range rec.Counters {
			if st.Counters == nil {
				st.Counters = make(map[string]int64)
			}
			st.Counters[k] += v
		}
	}
	t.mu.Unlock()
	out := make([]PhaseStat, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallNS > out[j].WallNS })
	return out
}

// Summary renders the per-phase totals as a table.
func (t *Tracer) Summary() string {
	if t == nil {
		return ""
	}
	tab := report.NewTable("Phase summary", "Phase", "Spans", "Wall", "Allocs", "Alloc bytes")
	for _, st := range t.Aggregate() {
		tab.AddRow(st.Name, st.Count,
			time.Duration(st.WallNS).Round(time.Microsecond).String(),
			st.Allocs, st.AllocBytes)
	}
	return tab.String()
}

// defaultTracer mirrors defaultReg: nil until a CLI enables tracing.
var defaultTracer atomic.Pointer[Tracer]

// DefaultTracer returns the process-wide tracer (nil when disabled).
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// SetDefaultTracer installs the process-wide tracer (nil disables).
func SetDefaultTracer(t *Tracer) { defaultTracer.Store(t) }

// StartSpan opens a root span on the default tracer; nil-safe and free
// when tracing is disabled.
func StartSpan(name string) *Span { return DefaultTracer().Start(name) }
