package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock is the injectable time source shared with campaign tests.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("phase")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	child := sp.Child("sub")
	child.Add("nodes", 5)
	child.End()
	sp.End()
	tr.SetClock(time.Now)
	if tr.Spans() != nil || tr.Aggregate() != nil || tr.Summary() != "" {
		t.Error("nil tracer must report nothing")
	}
}

func TestSpanNestingAndClock(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr.SetClock(clk.now)

	root := tr.Start("analyze")
	clk.advance(time.Second)
	child := root.Child("ddg")
	child.Add("nodes", 40)
	child.Add("nodes", 2)
	clk.advance(2 * time.Second)
	child.End()
	child.End() // idempotent
	clk.advance(time.Second)
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Spans complete child-first.
	if spans[0].Name != "ddg" || spans[0].Depth != 1 {
		t.Errorf("first completed span = %q depth %d, want ddg depth 1", spans[0].Name, spans[0].Depth)
	}
	if spans[0].WallNS != (2 * time.Second).Nanoseconds() {
		t.Errorf("child wall = %d ns, want 2s", spans[0].WallNS)
	}
	if spans[0].Counters["nodes"] != 42 {
		t.Errorf("child counter = %d, want 42", spans[0].Counters["nodes"])
	}
	if spans[1].Name != "analyze" || spans[1].Depth != 0 {
		t.Errorf("second completed span = %q depth %d", spans[1].Name, spans[1].Depth)
	}
	if spans[1].WallNS != (4 * time.Second).Nanoseconds() {
		t.Errorf("root wall = %d ns, want 4s", spans[1].WallNS)
	}

	// The JSONL sink carries one parseable line per span.
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("JSONL sink has %d lines, want 2", lines)
	}
}

func TestAggregateAndSummary(t *testing.T) {
	tr := NewTracer(nil)
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr.SetClock(clk.now)
	for i := 0; i < 3; i++ {
		sp := tr.Start("rangeprop")
		sp.Add("accesses", 10)
		clk.advance(time.Millisecond)
		sp.End()
	}
	sp := tr.Start("profile")
	clk.advance(time.Second)
	sp.End()

	agg := tr.Aggregate()
	if len(agg) != 2 {
		t.Fatalf("got %d phases, want 2", len(agg))
	}
	// Sorted by descending wall time: profile first.
	if agg[0].Name != "profile" || agg[1].Name != "rangeprop" {
		t.Errorf("phase order = %s, %s", agg[0].Name, agg[1].Name)
	}
	if agg[1].Count != 3 || agg[1].WallNS != (3*time.Millisecond).Nanoseconds() {
		t.Errorf("rangeprop stat = %+v", agg[1])
	}
	if agg[1].Counters["accesses"] != 30 {
		t.Errorf("aggregated counter = %d, want 30", agg[1].Counters["accesses"])
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "rangeprop") || !strings.Contains(sum, "profile") {
		t.Errorf("summary missing phases:\n%s", sum)
	}
}

func TestStartSpanDefaultTracer(t *testing.T) {
	if sp := StartSpan("x"); sp != nil {
		t.Fatal("StartSpan must be nil with tracing disabled")
	}
	tr := NewTracer(nil)
	SetDefaultTracer(tr)
	defer SetDefaultTracer(nil)
	sp := StartSpan("x")
	sp.End()
	if len(tr.Spans()) != 1 {
		t.Error("StartSpan did not record on the default tracer")
	}
}

func TestSpanAllocationDelta(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Start("alloc")
	sink = make([]byte, 1<<20)
	sp.End()
	rec := tr.Spans()[0]
	if rec.AllocBytes < 1<<20 {
		t.Errorf("alloc delta = %d bytes, want >= 1MiB", rec.AllocBytes)
	}
	if rec.Allocs == 0 {
		t.Error("alloc count delta is zero")
	}
}

// sink defeats dead-allocation elimination.
var sink []byte

// failNWriter fails its first n writes, then delegates to the buffer.
type failNWriter struct {
	n   int
	buf bytes.Buffer
}

func (w *failNWriter) Write(p []byte) (int, error) {
	if w.n > 0 {
		w.n--
		return 0, errors.New("disk full")
	}
	return w.buf.Write(p)
}

// TestSinkErrorDoesNotPoisonTracer ends spans against a sink whose first
// writes fail: the failed lines are counted as drops, the spans still
// land in memory, and later spans reach the sink normally.
func TestSinkErrorDoesNotPoisonTracer(t *testing.T) {
	reg := NewRegistry()
	SetDefault(reg)
	defer SetDefault(nil)
	w := &failNWriter{n: 2}
	tr := NewTracer(w)
	for _, name := range []string{"a", "b", "c", "d"} {
		tr.Start(name).End()
	}
	if got := tr.Drops(); got != 2 {
		t.Errorf("Drops() = %d, want 2", got)
	}
	if got := reg.Snapshot().Counter("epvf_obs_trace_drops"); got != 2 {
		t.Errorf("epvf_obs_trace_drops = %d, want 2", got)
	}
	if got := len(tr.Spans()); got != 4 {
		t.Errorf("in-memory spans = %d, want 4 (drops must not lose memory copies)", got)
	}
	lines := strings.Split(strings.TrimSpace(w.buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d, want the 2 post-recovery spans:\n%s", len(lines), w.buf.String())
	}
	for i, want := range []string{"c", "d"} {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatalf("sink line %d: %v", i, err)
		}
		if rec.Name != want {
			t.Errorf("sink line %d = span %q, want %q", i, rec.Name, want)
		}
	}
}
