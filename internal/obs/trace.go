package obs

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"

	"repro/internal/content"
)

// Trace identity. Every span carries a trace ID (shared by all spans of
// one campaign/analyze request, across processes) and a span ID; parent
// links stitch the spans into one tree. IDs are content.HashLen hex
// characters, matching the repository's content-hash width, so a trace ID
// is as readable and greppable as a plan ID.
//
// Two ID disciplines coexist:
//
//   - Random IDs (NewTraceID/NewSpanID) for ad-hoc roots and in-process
//     children, where uniqueness is all that matters.
//   - Deterministic IDs (DeterministicTraceID/DeterministicSpanID) for
//     spans whose identity is fixed by the work they describe: the
//     campaign root span and per-shard spans. Every process derives the
//     same IDs from the plan alone, so coordinator, workers and the
//     analysis daemon agree on the tree shape without negotiating, and a
//     requeued shard re-executed by a second worker produces spans with
//     the *same* IDs — readers dedup by span ID and the tree never
//     double-counts, mirroring the shard-hash record dedup.

// SpanContext is the portable identity of a span: enough to parent remote
// children and to stitch trees across processes.
type SpanContext struct {
	TraceID string `json:"trace"`
	SpanID  string `json:"span"`
}

// Valid reports whether the context can parent children.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

// NewTraceID returns a random trace ID.
func NewTraceID() string { return randomID() }

// NewSpanID returns a random span ID.
func NewSpanID() string { return randomID() }

func randomID() string {
	var b [content.HashLen / 2]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a valid (if collision-prone) identifier.
		return strings.Repeat("0", content.HashLen)
	}
	return hex.EncodeToString(b[:])
}

// DeterministicTraceID derives a trace ID from a domain tag and a seed
// (e.g. "epvf-campaign" + plan ID): every process computes the same ID.
func DeterministicTraceID(domain, seed string) string {
	h := content.NewHasher("epvf-trace-v1")
	h.Printf("%s\n%s\n", domain, seed)
	return h.Sum()
}

// DeterministicSpanID derives a span ID from its trace and a path of
// identifying parts (e.g. "shard", "17"). Same inputs, same ID, in every
// process — the dedup key for cross-process tree assembly.
func DeterministicSpanID(traceID string, parts ...string) string {
	h := content.NewHasher("epvf-span-v1")
	h.Printf("%s\n", traceID)
	for _, p := range parts {
		h.Printf("%s\n", p)
	}
	return h.Sum()
}

// TraceHeader is the propagation header carried on every instrumented
// HTTP hop (dist lease/result calls, serve /v1/* requests). The value is
// traceparent-style: "00-<trace-id>-<span-id>-01".
const TraceHeader = "Traceparent"

// InjectTraceHeader stamps ctx onto an outgoing request's headers. A
// zero/invalid context injects nothing.
func InjectTraceHeader(h http.Header, ctx SpanContext) {
	if !ctx.Valid() {
		return
	}
	h.Set(TraceHeader, "00-"+ctx.TraceID+"-"+ctx.SpanID+"-01")
}

// ExtractTraceHeader parses the propagation header from incoming request
// headers. ok is false when the header is absent or malformed (malformed
// headers are ignored, never an error: tracing must not fail requests).
func ExtractTraceHeader(h http.Header) (ctx SpanContext, ok bool) {
	v := h.Get(TraceHeader)
	if v == "" {
		return SpanContext{}, false
	}
	parts := strings.Split(v, "-")
	if len(parts) != 4 || parts[0] != "00" || parts[1] == "" || parts[2] == "" {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: parts[1], SpanID: parts[2]}, true
}
