package ts

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Event types published over the SSE stream. The wire format is the
// standard text/event-stream framing: `event: <type>`, `id: <seq>`,
// `data: <single-line JSON>`, blank line.
const (
	EventHello    = "hello"    // sent once per subscriber on connect
	EventMetrics  = "metrics"  // per-tick registry deltas ([]{k,v,r})
	EventCampaign = "campaign" // campaign.StatusJSON progress snapshots
	EventFleet    = "fleet"    // dist coordinator status snapshots
	EventSpan     = "span"     // completed obs.SpanRecord
	EventAlert    = "alert"    // alert transition records
)

// Event is one fanout message: a type tag and pre-marshaled JSON data.
type Event struct {
	Type string
	Data []byte
	Seq  uint64
}

// DefaultQueue is the per-subscriber bounded queue depth.
const DefaultQueue = 256

// Hub fans events out to SSE subscribers. Publish is non-blocking: a
// subscriber whose bounded queue is full loses the event, and the loss
// is counted (per subscriber and in the epvf_obs_sse_drops counter) —
// slow clients never block the publisher. A nil *Hub no-ops on every
// method, so publish sites stay zero-cost when live telemetry is off.
type Hub struct {
	reg *obs.Registry

	nsubs     atomic.Int32
	seq       atomic.Uint64
	published atomic.Uint64
	dropped   atomic.Uint64

	mu   sync.Mutex
	subs map[*Sub]struct{}
}

// NewHub returns a hub counting drops into reg (nil means the default
// registry at drop time).
func NewHub(reg *obs.Registry) *Hub {
	return &Hub{reg: reg, subs: make(map[*Sub]struct{})}
}

// Sub is one subscriber: a bounded event channel plus drop accounting.
type Sub struct {
	hub    *Hub
	ch     chan Event
	drops  atomic.Uint64
	closed bool
}

// Subscribe registers a subscriber with the given queue depth (<=0
// means DefaultQueue). Returns nil on a nil hub.
func (h *Hub) Subscribe(queue int) *Sub {
	if h == nil {
		return nil
	}
	if queue <= 0 {
		queue = DefaultQueue
	}
	s := &Sub{hub: h, ch: make(chan Event, queue)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	h.nsubs.Add(1)
	return s
}

// C returns the subscriber's event channel; it is closed by Close.
func (s *Sub) C() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Drops returns how many events this subscriber lost to a full queue.
func (s *Sub) Drops() uint64 {
	if s == nil {
		return 0
	}
	return s.drops.Load()
}

// Close unregisters the subscriber and closes its channel. Safe to call
// twice and on nil.
func (s *Sub) Close() {
	if s == nil {
		return
	}
	h := s.hub
	h.mu.Lock()
	if !s.closed {
		s.closed = true
		delete(h.subs, s)
		close(s.ch)
		h.nsubs.Add(-1)
	}
	h.mu.Unlock()
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	if h == nil {
		return 0
	}
	return int(h.nsubs.Load())
}

// Published returns how many events have been published.
func (h *Hub) Published() uint64 {
	if h == nil {
		return 0
	}
	return h.published.Load()
}

// Drops returns the total events lost across all subscribers.
func (h *Hub) Drops() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// Publish fans data (already-marshaled single-line JSON) out to every
// subscriber without blocking. Nil-safe: the disabled path is one
// branch; with zero subscribers it is one atomic load.
func (h *Hub) Publish(typ string, data []byte) {
	if h == nil || h.nsubs.Load() == 0 {
		return
	}
	ev := Event{Type: typ, Data: data, Seq: h.seq.Add(1)}
	h.published.Add(1)
	var drops uint64
	h.mu.Lock()
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			s.drops.Add(1)
			drops++
		}
	}
	h.mu.Unlock()
	if drops > 0 {
		h.dropped.Add(drops)
		reg := h.reg
		if reg == nil {
			reg = obs.Default()
		}
		reg.Counter("epvf_obs_sse_drops").Add(int64(drops))
	}
}

// PublishJSON marshals v and publishes it. The marshal is skipped
// entirely when there are no subscribers, so instrumented sites pay one
// atomic load when nobody is watching.
func (h *Hub) PublishJSON(typ string, v any) {
	if h == nil || h.nsubs.Load() == 0 {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.Publish(typ, data)
}

// keepaliveEvery is the SSE comment-ping period keeping idle
// connections alive through proxies.
const keepaliveEvery = 15 * time.Second

// ServeHTTP serves the /events SSE stream: a hello event, then every
// published event as `event:`/`id:`/`data:` frames, with comment pings
// while idle. The subscription is torn down when the client goes away.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h == nil {
		http.Error(w, "event stream disabled", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sub := h.Subscribe(0)
	defer sub.Close()

	fmt.Fprintf(w, "retry: 2000\nevent: %s\ndata: {\"subscribers\":%d}\n\n",
		EventHello, h.Subscribers())
	fl.Flush()

	ping := time.NewTicker(keepaliveEvery)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ping.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n",
				ev.Type, ev.Seq, ev.Data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// defaultHub mirrors Default for the hub: the process-wide fanout
// publish sites use when live telemetry is mounted.
var defaultHub atomic.Pointer[Hub]

// DefaultHub returns the process-wide hub (nil when disabled).
func DefaultHub() *Hub { return defaultHub.Load() }

// SetDefaultHub installs the process-wide hub (nil disables).
func SetDefaultHub(h *Hub) { defaultHub.Store(h) }
