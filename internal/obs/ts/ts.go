// Package ts is the bounded in-process time-series layer over the obs
// metrics registry: a Collector samples every registered series on a
// fixed stride into fixed-capacity rings (raw values plus rate-of-change
// for counters and histogram counts), downsampled into three resolutions
// (~1s / 10s / 60s at the default stride), and fans the per-tick deltas
// out to Server-Sent-Events subscribers through a Hub whose per-client
// queues are bounded — a slow dashboard drops events and is counted, it
// never blocks the sampling tick or any hot path.
//
// Everything follows the obs discipline: a nil *Collector and a nil *Hub
// no-op on every method, so instrumented call sites pay one predictable
// nil check when the live-telemetry layer is disabled.
package ts

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Point is one sample: T is unix milliseconds, V the value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// ring is a fixed-capacity point ring; len grows to cap then wraps.
type ring struct {
	pts  []Point
	next int
}

func newRing(capacity int) *ring { return &ring{pts: make([]Point, 0, capacity)} }

func (r *ring) push(p Point) {
	if len(r.pts) < cap(r.pts) {
		r.pts = append(r.pts, p)
	} else {
		r.pts[r.next] = p
	}
	r.next = (r.next + 1) % cap(r.pts)
}

// points returns the ring contents, oldest first.
func (r *ring) points() []Point {
	n := len(r.pts)
	out := make([]Point, 0, n)
	start := 0
	if n == cap(r.pts) {
		start = r.next
	}
	for i := 0; i < n; i++ {
		out = append(out, r.pts[(start+i)%n])
	}
	return out
}

// resMults are the downsampling factors of the three resolutions, in
// ticks of the base stride: every tick, every 10th, every 60th.
var resMults = [3]int{1, 10, 60}

// accum aggregates base-resolution samples into one coarser point: mean
// for gauges and rates, last value for monotone counters.
type accum struct {
	n       int
	sum     float64
	sumRate float64
	last    float64
	rated   bool
}

// series is the time-series state of one registry series.
type series struct {
	name   string
	labels map[string]string
	kind   string

	have  bool
	last  float64
	lastT time.Time

	raw  [3]*ring
	rate [3]*ring // counters and histogram counts only
	acc  [3]accum // index 0 unused
}

// Config describes a Collector.
type Config struct {
	// Registry is the sampled registry (required).
	Registry *obs.Registry
	// Stride is the base sampling period; zero means DefaultStride.
	Stride time.Duration
	// Capacity bounds each ring (points per resolution per series); zero
	// means DefaultCapacity.
	Capacity int
	// MaxSeries bounds how many registry series the collector tracks;
	// later series are dropped and counted. Zero means DefaultMaxSeries.
	MaxSeries int
	// Hub, when non-nil, receives one "metrics" event per tick carrying
	// the series whose values changed.
	Hub *Hub
}

// Collector sizing defaults: 1s stride, 240 points per ring (4 minutes
// at base resolution, 4 hours at 60s), 4096 tracked series.
const (
	DefaultStride    = time.Second
	DefaultCapacity  = 240
	DefaultMaxSeries = 4096
)

// Collector samples a registry into bounded rings. Create with New; a
// nil *Collector no-ops on every method.
type Collector struct {
	cfg Config

	mu      sync.Mutex
	now     func() time.Time
	series  map[string]*series
	order   []string
	ticks   uint64
	dropped int64
}

// New returns a collector over cfg.Registry. It does not sample until
// Tick is called (or Start spawns the ticking goroutine).
func New(cfg Config) *Collector {
	if cfg.Stride <= 0 {
		cfg.Stride = DefaultStride
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = DefaultMaxSeries
	}
	return &Collector{cfg: cfg, now: time.Now, series: make(map[string]*series)}
}

// SetClock injects the time source (tests).
func (c *Collector) SetClock(now func() time.Time) {
	if c == nil || now == nil {
		return
	}
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// Hub returns the fanout hub the collector publishes into (nil when none
// was configured).
func (c *Collector) Hub() *Hub {
	if c == nil {
		return nil
	}
	return c.cfg.Hub
}

// Stride returns the base sampling period.
func (c *Collector) Stride() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.Stride
}

// Start spawns the sampling goroutine on the configured stride and
// returns its stop function. Safe on a nil collector (no-op stop).
func (c *Collector) Start() (stop func()) {
	if c == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(c.cfg.Stride)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				c.Tick()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// seriesDelta is one changed series in a per-tick "metrics" SSE event.
type seriesDelta struct {
	// K is the series key (name plus rendered labels), V the raw value,
	// R the per-second rate of change (counters and histogram counts).
	K string   `json:"k"`
	V float64  `json:"v"`
	R *float64 `json:"r,omitempty"`
}

// Tick samples the registry once. Nil-safe: the disabled path is one
// branch.
func (c *Collector) Tick() {
	if c == nil {
		return
	}
	c.mu.Lock()
	now := c.now()
	snap := c.cfg.Registry.Snapshot()
	var deltas []seriesDelta
	for i := range snap.Samples {
		smp := &snap.Samples[i]
		key := sampleKey(smp)
		s := c.series[key]
		if s == nil {
			if len(c.series) >= c.cfg.MaxSeries {
				c.dropped++
				continue
			}
			s = &series{name: smp.Name, labels: smp.Labels, kind: smp.Kind}
			for lvl := range resMults {
				s.raw[lvl] = newRing(c.cfg.Capacity)
				if counterLike(smp.Kind) {
					s.rate[lvl] = newRing(c.cfg.Capacity)
				}
			}
			c.series[key] = s
			c.order = append(c.order, key)
		}
		v := smp.Value
		if smp.Kind == "histogram" {
			v = float64(smp.Count)
		}
		var ratePtr *float64
		rate := 0.0
		rated := false
		if counterLike(smp.Kind) && s.have {
			if dt := now.Sub(s.lastT).Seconds(); dt > 0 {
				rate = (v - s.last) / dt
				if rate < 0 { // counter reset (Registry.Reset / rebind)
					rate = 0
				}
				rated = true
				ratePtr = &rate
			}
		}
		changed := !s.have || v != s.last
		p := Point{T: now.UnixMilli(), V: v}
		s.raw[0].push(p)
		if s.rate[0] != nil && rated {
			s.rate[0].push(Point{T: p.T, V: rate})
		}
		// Fold into the coarser resolutions, emitting one aggregated
		// point whenever a full stride of the level elapses.
		for lvl := 1; lvl < len(resMults); lvl++ {
			a := &s.acc[lvl]
			a.n++
			a.sum += v
			a.last = v
			if rated {
				a.sumRate += rate
				a.rated = true
			}
			if a.n >= resMults[lvl] {
				agg := a.sum / float64(a.n)
				if counterLike(smp.Kind) {
					agg = a.last
				}
				s.raw[lvl].push(Point{T: p.T, V: agg})
				if s.rate[lvl] != nil && a.rated {
					s.rate[lvl].push(Point{T: p.T, V: a.sumRate / float64(a.n)})
				}
				*a = accum{}
			}
		}
		s.have, s.last, s.lastT = true, v, now
		if changed {
			deltas = append(deltas, seriesDelta{K: key, V: v, R: ratePtr})
		}
	}
	c.ticks++
	hub := c.cfg.Hub
	c.mu.Unlock()
	if len(deltas) > 0 {
		hub.PublishJSON(EventMetrics, deltas)
	}
}

// counterLike reports whether a series kind accumulates monotonically
// (and so has a meaningful rate of change).
func counterLike(kind string) bool { return kind == "counter" || kind == "histogram" }

// sampleKey renders the stable series key: name plus sorted k="v" labels
// (the same shape the registry uses internally).
func sampleKey(smp *obs.Sample) string {
	if len(smp.Labels) == 0 {
		return smp.Name
	}
	keys := make([]string, 0, len(smp.Labels))
	for k := range smp.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(smp.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, smp.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// SeriesJSON is one series in the /ts document.
type SeriesJSON struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Points []Point           `json:"points"`
	// Rate carries the per-second rate-of-change points (counters and
	// histogram counts only).
	Rate []Point `json:"rate,omitempty"`
}

// JSONDoc is the /ts response document.
type JSONDoc struct {
	StrideSeconds float64      `json:"stride_seconds"`
	Res           string       `json:"res"`
	Series        []SeriesJSON `json:"series"`
}

// resLevel maps a requested resolution to a downsampling level: the
// level whose effective stride is nearest the request.
func (c *Collector) resLevel(req string) (int, string) {
	d, err := time.ParseDuration(req)
	if req == "" || err != nil || d <= 0 {
		return 0, resName(c.cfg.Stride, 0)
	}
	best, bestDiff := 0, time.Duration(1<<62)
	for lvl, mult := range resMults {
		eff := c.cfg.Stride * time.Duration(mult)
		diff := eff - d
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = lvl, diff
		}
	}
	return best, resName(c.cfg.Stride, best)
}

func resName(stride time.Duration, lvl int) string {
	return (stride * time.Duration(resMults[lvl])).String()
}

// JSON renders the collector state at the requested resolution ("1s",
// "10s", "60s"/"1m"; empty means base), keeping only series whose key
// starts with prefix (empty keeps all). Nil-safe (empty document).
func (c *Collector) JSON(res, prefix string) JSONDoc {
	if c == nil {
		return JSONDoc{}
	}
	lvl, name := c.resLevel(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	doc := JSONDoc{StrideSeconds: c.cfg.Stride.Seconds(), Res: name}
	for _, key := range c.order {
		if prefix != "" && !strings.HasPrefix(key, prefix) {
			continue
		}
		s := c.series[key]
		sj := SeriesJSON{Name: s.name, Labels: s.labels, Kind: s.kind, Points: s.raw[lvl].points()}
		if s.rate[lvl] != nil {
			sj.Rate = s.rate[lvl].points()
		}
		doc.Series = append(doc.Series, sj)
	}
	sort.Slice(doc.Series, func(i, j int) bool {
		if doc.Series[i].Name != doc.Series[j].Name {
			return doc.Series[i].Name < doc.Series[j].Name
		}
		return sampleKeyOf(&doc.Series[i]) < sampleKeyOf(&doc.Series[j])
	})
	return doc
}

func sampleKeyOf(sj *SeriesJSON) string {
	return sampleKey(&obs.Sample{Name: sj.Name, Labels: sj.Labels})
}

// ServeHTTP serves the /ts endpoint: the JSON document, filtered by
// ?res= and ?prefix=.
func (c *Collector) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if c == nil {
		http.Error(w, "time-series collector disabled", http.StatusNotFound)
		return
	}
	q := req.URL.Query()
	doc := c.JSON(q.Get("res"), q.Get("prefix"))
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// Summary is the compact collector view surfaced on /debug/vars and in
// the campaign status ts section.
type Summary struct {
	Series        int     `json:"series"`
	Ticks         uint64  `json:"ticks"`
	StrideSeconds float64 `json:"stride_seconds"`
	DroppedSeries int64   `json:"dropped_series"`
	Subscribers   int     `json:"sse_subscribers"`
	Published     uint64  `json:"sse_published"`
	Dropped       uint64  `json:"sse_dropped"`
}

// Summarize snapshots the collector (nil for a nil collector).
func (c *Collector) Summarize() *Summary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	s := &Summary{
		Series:        len(c.series),
		Ticks:         c.ticks,
		StrideSeconds: c.cfg.Stride.Seconds(),
		DroppedSeries: c.dropped,
	}
	c.mu.Unlock()
	if h := c.cfg.Hub; h != nil {
		s.Subscribers = h.Subscribers()
		s.Published = h.Published()
		s.Dropped = h.Drops()
	}
	return s
}

// defaultCollector mirrors obs.Default: the process-wide collector the
// /debug/vars ts section reads. Installed by dashboard.Mount.
var defaultCollector atomic.Pointer[Collector]

// Default returns the process-wide collector (nil when live telemetry is
// disabled).
func Default() *Collector { return defaultCollector.Load() }

// SetDefault installs the process-wide collector (nil disables).
func SetDefault(c *Collector) { defaultCollector.Store(c) }
