package ts

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock steps a collector deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestCollectorSamplesAndRates(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("requests_total", "code", "200")
	g := reg.Gauge("depth")
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{Registry: reg, Stride: time.Second, Capacity: 8})
	c.SetClock(clk.now)

	for i := 0; i < 5; i++ {
		ctr.Add(10)
		g.Set(float64(i))
		c.Tick()
		clk.advance(time.Second)
	}

	doc := c.JSON("", "requests_total")
	if len(doc.Series) != 1 {
		t.Fatalf("series = %d, want 1", len(doc.Series))
	}
	s := doc.Series[0]
	if s.Kind != "counter" || s.Labels["code"] != "200" {
		t.Fatalf("bad series meta: %+v", s)
	}
	if got := len(s.Points); got != 5 {
		t.Fatalf("raw points = %d, want 5", got)
	}
	if last := s.Points[4].V; last != 50 {
		t.Fatalf("last raw = %v, want 50", last)
	}
	// Rate points start at the second tick (needs a previous sample).
	if got := len(s.Rate); got != 4 {
		t.Fatalf("rate points = %d, want 4", got)
	}
	for _, p := range s.Rate {
		if p.V != 10 {
			t.Fatalf("rate = %v, want 10/s", p.V)
		}
	}

	gd := c.JSON("1s", "depth")
	if len(gd.Series) != 1 || gd.Series[0].Rate != nil {
		t.Fatalf("gauge series should have no rate ring: %+v", gd.Series)
	}
}

func TestCollectorRingWraps(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v")
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := New(Config{Registry: reg, Stride: time.Second, Capacity: 4})
	c.SetClock(clk.now)
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		c.Tick()
		clk.advance(time.Second)
	}
	pts := c.JSON("", "v").Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("points = %d, want capacity 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.V != want {
			t.Fatalf("pts[%d] = %v, want %v (oldest-first after wrap)", i, p.V, want)
		}
	}
}

func TestCollectorDownsamples(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("c_total")
	g := reg.Gauge("g")
	clk := &fakeClock{t: time.Unix(2000, 0)}
	c := New(Config{Registry: reg, Stride: time.Second, Capacity: 16})
	c.SetClock(clk.now)

	for i := 1; i <= 20; i++ {
		ctr.Add(1)
		g.Set(float64(i))
		c.Tick()
		clk.advance(time.Second)
	}

	// 20 base ticks fold into two 10s points.
	cd := c.JSON("10s", "c_total").Series[0]
	if len(cd.Points) != 2 {
		t.Fatalf("10s counter points = %d, want 2", len(cd.Points))
	}
	// Counters keep the last value of the window.
	if cd.Points[0].V != 10 || cd.Points[1].V != 20 {
		t.Fatalf("10s counter points = %+v, want 10,20", cd.Points)
	}
	gd := c.JSON("10s", "g").Series[0]
	// Gauges keep the window mean: mean(1..10)=5.5, mean(11..20)=15.5.
	if gd.Points[0].V != 5.5 || gd.Points[1].V != 15.5 {
		t.Fatalf("10s gauge points = %+v, want 5.5,15.5", gd.Points)
	}
	// No full 60s window yet.
	if got := len(c.JSON("60s", "g").Series[0].Points); got != 0 {
		t.Fatalf("60s points = %d, want 0", got)
	}
	if res := c.JSON("1m", "g").Res; res != "1m0s" {
		t.Fatalf("1m res label = %q", res)
	}
}

func TestCollectorMaxSeries(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 6; i++ {
		reg.Gauge(fmt.Sprintf("g%d", i)).Set(1)
	}
	c := New(Config{Registry: reg, Stride: time.Second, MaxSeries: 4})
	c.Tick()
	sum := c.Summarize()
	if sum.Series != 4 {
		t.Fatalf("series = %d, want 4 (bounded)", sum.Series)
	}
	if sum.DroppedSeries != 2 {
		t.Fatalf("dropped = %d, want 2", sum.DroppedSeries)
	}
}

func TestNilCollectorAndHub(t *testing.T) {
	var c *Collector
	c.Tick()
	c.SetClock(time.Now)
	stop := c.Start()
	stop()
	if c.Summarize() != nil || c.Hub() != nil || len(c.JSON("", "").Series) != 0 {
		t.Fatal("nil collector views should be empty")
	}
	var h *Hub
	h.Publish("x", nil)
	h.PublishJSON("x", 1)
	if h.Subscribe(1) != nil || h.Subscribers() != 0 || h.Drops() != 0 {
		t.Fatal("nil hub should no-op")
	}
	var s *Sub
	s.Close()
	if s.C() != nil || s.Drops() != 0 {
		t.Fatal("nil sub should no-op")
	}
}

// TestHubFanoutUnderLoad runs N live subscribers plus one deliberately
// slow (never-draining) client and asserts: every fast subscriber sees
// every event, publish latency stays bounded by the slow client, drops
// are counted into epvf_obs_sse_drops, and no goroutines leak once
// subscribers disconnect.
func TestHubFanoutUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	h := NewHub(reg)

	const nFast = 8
	const nEvents = 500
	slowQueue := 4
	slow := h.Subscribe(slowQueue)

	var wg sync.WaitGroup
	counts := make([]int, nFast)
	for i := 0; i < nFast; i++ {
		sub := h.Subscribe(nEvents + 1)
		wg.Add(1)
		go func(i int, sub *Sub) {
			defer wg.Done()
			for range sub.C() {
				counts[i]++
			}
		}(i, sub)
		defer sub.Close()
	}

	start := time.Now()
	for i := 0; i < nEvents; i++ {
		h.Publish(EventMetrics, []byte(`{"k":"x","v":1}`))
	}
	elapsed := time.Since(start)
	// Non-blocking publish: 500 events to 9 subscribers must not take
	// anywhere near a second even on a loaded CI box.
	if elapsed > time.Second {
		t.Fatalf("publishing took %v; slow client blocked the hub?", elapsed)
	}

	wantDrops := uint64(nEvents - slowQueue)
	if got := slow.Drops(); got != wantDrops {
		t.Fatalf("slow sub drops = %d, want %d", got, wantDrops)
	}
	if got := h.Drops(); got != wantDrops {
		t.Fatalf("hub drops = %d, want %d", got, wantDrops)
	}
	if got := reg.Snapshot().Counter("epvf_obs_sse_drops"); got != int64(wantDrops) {
		t.Fatalf("epvf_obs_sse_drops = %v, want %d", got, wantDrops)
	}

	// Close the fast subscribers; their drain goroutines must exit and
	// each must have seen every event.
	h.mu.Lock()
	subs := make([]*Sub, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
	wg.Wait()
	for i, n := range counts {
		if n != nEvents {
			t.Fatalf("fast sub %d saw %d/%d events", i, n, nEvents)
		}
	}
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after close, want 0", h.Subscribers())
	}

	// Goroutine-leak check with a settle loop (runtime bookkeeping lags).
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}

func TestHubPublishJSONSkipsMarshalWithoutSubscribers(t *testing.T) {
	h := NewHub(obs.NewRegistry())
	// A value json.Marshal would reject: proof the marshal is skipped.
	h.PublishJSON(EventMetrics, func() {})
	if h.Published() != 0 {
		t.Fatal("publish with zero subscribers should be dropped before marshal")
	}
	sub := h.Subscribe(1)
	defer sub.Close()
	h.PublishJSON(EventMetrics, map[string]int{"a": 1})
	select {
	case ev := <-sub.C():
		if ev.Type != EventMetrics || string(ev.Data) != `{"a":1}` {
			t.Fatalf("bad event: %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestSSEHandlerStreams(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHub(reg)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Wait for the subscription to register, then publish.
	deadline := time.Now().Add(2 * time.Second)
	for h.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	h.PublishJSON(EventAlert, map[string]string{"rule": "stall"})

	sc := bufio.NewScanner(resp.Body)
	var sawHello, sawAlert bool
	for sc.Scan() {
		line := sc.Text()
		if line == "event: "+EventHello {
			sawHello = true
		}
		if line == "event: "+EventAlert {
			sawAlert = true
		}
		if strings.HasPrefix(line, "data: ") && sawAlert {
			if !strings.Contains(line, `"stall"`) {
				t.Fatalf("alert data = %q", line)
			}
			break
		}
	}
	if !sawHello || !sawAlert {
		t.Fatalf("hello=%v alert=%v", sawHello, sawAlert)
	}

	// Disconnect; the handler must unsubscribe.
	resp.Body.Close()
	deadline = time.Now().Add(2 * time.Second)
	for h.Subscribers() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := h.Subscribers(); n != 0 {
		t.Fatalf("subscribers = %d after disconnect, want 0", n)
	}
}

func TestServeHTTPTSDocument(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("epvf_x_total").Add(3)
	c := New(Config{Registry: reg, Stride: time.Second})
	c.Tick()
	rr := httptest.NewRecorder()
	c.ServeHTTP(rr, httptest.NewRequest("GET", "/ts?prefix=epvf_x", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	body := rr.Body.String()
	if !strings.Contains(body, `"epvf_x_total"`) || !strings.Contains(body, `"stride_seconds"`) {
		t.Fatalf("bad /ts body: %s", body)
	}
}
