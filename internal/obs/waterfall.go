package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/report"
)

// Cross-process span-tree assembly: BuildSpanTrees stitches persisted
// span records (campaign logs, worker subtrees, daemon replies) into one
// tree per trace ID. Records are deduplicated by span ID before linking —
// first occurrence wins — so requeued shards whose spans were shipped by
// two workers, or a resumed campaign that re-emits its deterministic root
// span, never double-count, mirroring the shard-hash record dedup.

// SpanNode is one span plus its children, sorted by start time.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode
}

// SpanTree is the assembled tree for one trace ID.
type SpanTree struct {
	TraceID string
	// Roots are the parentless spans plus any orphans (spans whose
	// parent never arrived), sorted by start time.
	Roots []*SpanNode
	// Orphans counts spans promoted to roots because their parent is
	// missing — a healthy complete trace has 0.
	Orphans int
	// Spans is the deduplicated span count.
	Spans int
	// Procs are the distinct producing processes, sorted.
	Procs []string
}

// BuildSpanTrees groups records by trace ID and assembles one tree per
// trace, sorted by earliest span start. Records without a trace ID are
// dropped (plain phase spans cannot be correlated).
func BuildSpanTrees(recs []SpanRecord) []*SpanTree {
	byTrace := make(map[string][]SpanRecord)
	order := []string{}
	seen := make(map[string]bool, len(recs))
	for _, rec := range recs {
		if rec.TraceID == "" || rec.SpanID == "" {
			continue
		}
		key := rec.TraceID + "/" + rec.SpanID
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := byTrace[rec.TraceID]; !ok {
			order = append(order, rec.TraceID)
		}
		byTrace[rec.TraceID] = append(byTrace[rec.TraceID], rec)
	}
	out := make([]*SpanTree, 0, len(order))
	for _, tid := range order {
		out = append(out, buildTree(tid, byTrace[tid]))
	}
	sort.SliceStable(out, func(i, j int) bool {
		return treeStart(out[i]).Before(treeStart(out[j]))
	})
	return out
}

func buildTree(tid string, recs []SpanRecord) *SpanTree {
	nodes := make(map[string]*SpanNode, len(recs))
	procs := make(map[string]bool)
	for _, rec := range recs {
		nodes[rec.SpanID] = &SpanNode{SpanRecord: rec}
		if rec.Proc != "" {
			procs[rec.Proc] = true
		}
	}
	tree := &SpanTree{TraceID: tid, Spans: len(recs)}
	for _, rec := range recs {
		node := nodes[rec.SpanID]
		if rec.ParentID != "" {
			if parent, ok := nodes[rec.ParentID]; ok {
				parent.Children = append(parent.Children, node)
				continue
			}
			tree.Orphans++
		}
		tree.Roots = append(tree.Roots, node)
	}
	var sortChildren func(n *SpanNode)
	sortChildren = func(n *SpanNode) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	sort.SliceStable(tree.Roots, func(i, j int) bool {
		return tree.Roots[i].Start.Before(tree.Roots[j].Start)
	})
	for _, r := range tree.Roots {
		sortChildren(r)
	}
	for p := range procs {
		tree.Procs = append(tree.Procs, p)
	}
	sort.Strings(tree.Procs)
	return tree
}

func treeStart(tr *SpanTree) time.Time {
	if len(tr.Roots) == 0 {
		return time.Time{}
	}
	return tr.Roots[0].Start
}

// Bounds returns the earliest start and latest end across every span in
// the tree.
func (tr *SpanTree) Bounds() (start, end time.Time) {
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		e := n.Start.Add(time.Duration(n.WallNS))
		if start.IsZero() || n.Start.Before(start) {
			start = n.Start
		}
		if e.After(end) {
			end = e
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tr.Roots {
		walk(r)
	}
	return start, end
}

// Wall is the end-to-end duration of the trace.
func (tr *SpanTree) Wall() time.Duration {
	start, end := tr.Bounds()
	return end.Sub(start)
}

// Header is the one-line trace summary ("trace <id>: N spans across M
// processes ...") that heads both renderings — and that trace_demo.sh
// greps for.
func (tr *SpanTree) Header() string {
	return fmt.Sprintf("trace %s: %d spans across %d processes (%s), %d orphans, wall %s",
		tr.TraceID, tr.Spans, len(tr.Procs), strings.Join(tr.Procs, ", "),
		tr.Orphans, tr.Wall().Round(time.Millisecond))
}

// flatten walks the tree depth-first, calling fn with each node's depth.
func (tr *SpanTree) flatten(fn func(n *SpanNode, depth int)) {
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		fn(n, depth)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range tr.Roots {
		walk(r, 0)
	}
}

// RenderWaterfall renders the trace as a text waterfall: one row per
// span, indented by tree depth, with offset/duration columns and an
// ASCII gutter bar positioned on the trace's wall-clock extent.
func (tr *SpanTree) RenderWaterfall() string {
	const gutter = 40
	start, end := tr.Bounds()
	total := end.Sub(start)
	var b strings.Builder
	b.WriteString(tr.Header())
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  %-14s %-44s %10s %10s  %s\n", "proc", "span", "offset", "wall", "timeline")
	tr.flatten(func(n *SpanNode, depth int) {
		name := strings.Repeat("  ", depth) + n.Name
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		offset := n.Start.Sub(start)
		bar := asciiBar(gutter, total, offset, time.Duration(n.WallNS))
		fmt.Fprintf(&b, "  %-14s %-44s %10s %10s  [%s]\n",
			n.Proc, name,
			"+"+offset.Round(time.Microsecond).String(),
			time.Duration(n.WallNS).Round(time.Microsecond).String(),
			bar)
	})
	return b.String()
}

// asciiBar draws a width-cell gutter with '#' over the span's extent.
func asciiBar(width int, total, offset, wall time.Duration) string {
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = '.'
	}
	if total <= 0 {
		return string(cells)
	}
	lo := int(float64(offset) / float64(total) * float64(width))
	hi := int(float64(offset+wall) / float64(total) * float64(width))
	if lo >= width {
		lo = width - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > width {
		hi = width
	}
	for i := lo; i < hi; i++ {
		cells[i] = '#'
	}
	return string(cells)
}

// Timeline converts the trace to a report.Timeline block for the HTML
// rendering (`campaign trace -html`).
func (tr *SpanTree) Timeline() *report.Timeline {
	start, end := tr.Bounds()
	total := end.Sub(start)
	tl := &report.Timeline{Title: tr.Header()}
	tr.flatten(func(n *SpanNode, depth int) {
		left, width := 0.0, 1.0
		if total > 0 {
			left = float64(n.Start.Sub(start)) / float64(total)
			width = float64(n.WallNS) / float64(total)
		}
		tl.Rows = append(tl.Rows, report.TimelineRow{
			Label: strings.Repeat("  ", depth) + n.Name,
			Proc:  n.Proc,
			Left:  left,
			Width: width,
			Text: fmt.Sprintf("%s · %s · +%s · %s · span %s",
				n.Proc, n.Name,
				n.Start.Sub(start).Round(time.Microsecond),
				time.Duration(n.WallNS).Round(time.Microsecond),
				n.SpanID),
		})
	})
	return tl
}

// TimelineHTML renders one or more traces as a standalone HTML timeline
// page.
func TimelineHTML(title string, trees []*SpanTree) *report.HTMLDoc {
	doc := report.NewHTMLDoc(title)
	for _, tr := range trees {
		doc.AddTimeline(tr.Timeline())
	}
	return doc
}
