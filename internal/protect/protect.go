// Package protect implements the paper's §V case study: selective
// instruction duplication for SDC mitigation. Static instructions are
// ranked — by per-instruction ePVF (the paper's heuristic) or by execution
// frequency (the hot-path baseline) — and greedily selected under a
// performance-overhead budget. Each selected instruction's backward compute
// slice is duplicated and a comparison of the original and shadow values is
// inserted; a mismatch branches to a detector, which terminates the run
// with the Detected outcome instead of letting the fault become an SDC.
package protect

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/attr"
	"repro/internal/epvf"
	"repro/internal/ir"
)

// Eligible reports whether a static instruction can anchor a duplication
// region: it must define a register through a re-computable operation.
// Loads are eligible (the shadow re-reads the ECC-protected memory);
// allocas, calls, mallocs and phis are region inputs, not candidates.
func Eligible(in *ir.Instr) bool {
	switch {
	case in.Op.IsIntArith(), in.Op.IsFloatArith(), in.Op.IsConversion(),
		in.Op.IsMathUnary(), in.Op.IsMathBinary():
		return true
	case in.Op == ir.OpGEP, in.Op == ir.OpICmp, in.Op == ir.OpFCmp,
		in.Op == ir.OpSelect, in.Op == ir.OpLoad:
		return true
	default:
		return false
	}
}

// Ranking is a priority-ordered list of static instructions to protect.
type Ranking []*ir.Instr

// RankByEPVF orders eligible instructions by descending per-instruction
// ePVF (Eq. 3), breaking ties by dynamic execution count and then static
// ID for determinism.
func RankByEPVF(per map[*ir.Instr]*epvf.InstrVuln) Ranking {
	return rank(per, func(a, b *epvf.InstrVuln) bool {
		if a.EPVF() != b.EPVF() {
			return a.EPVF() > b.EPVF()
		}
		if a.Dynamic != b.Dynamic {
			return a.Dynamic > b.Dynamic
		}
		return a.Instr.ID < b.Instr.ID
	})
}

// RankByEPVFDensity orders eligible instructions by SDC-prone bit mass per
// unit of protection cost: (ACE bits − crash bits) / CostEstimate. This is
// the cost-aware refinement of the paper's ePVF ranking — same signal,
// normalized by the price of the shadow slice — and packs substantially
// more SDC coverage into a fixed overhead budget.
func RankByEPVFDensity(per map[*ir.Instr]*epvf.InstrVuln) Ranking {
	density := func(v *epvf.InstrVuln) float64 {
		c := CostEstimate(v.Instr, v.Dynamic)
		if c == 0 {
			return 0
		}
		return float64(v.ACEBits-v.CrashBits) / float64(c)
	}
	return rank(per, func(a, b *epvf.InstrVuln) bool {
		da, db := density(a), density(b)
		if da != db {
			return da > db
		}
		return a.Instr.ID < b.Instr.ID
	})
}

// RankByMisprediction orders eligible instructions by observed danger
// rather than modeled danger: an attribution snapshot (internal/attr)
// counts, per static instruction, the injections that actually produced
// an SDC plus the undershoots — faults the model called benign (unACE)
// that corrupted state anyway. Instructions the model most underestimates
// rank first; ties break by per-instruction ePVF (the model's own
// signal), then static ID. Instructions the campaign never hit fall back
// to pure ePVF order below every observed one.
func RankByMisprediction(per map[*ir.Instr]*epvf.InstrVuln, s *attr.Snapshot) Ranking {
	danger := make(map[int]int64)
	if s != nil {
		for i := range s.Cells {
			cj := &s.Cells[i]
			w := cj.SDC
			if cj.Class == attr.ClassUnACE.String() {
				// Undershoot mass not already counted as SDC.
				w += cj.Hang + cj.Detected
			}
			danger[cj.Instr] += w
		}
	}
	return rank(per, func(a, b *epvf.InstrVuln) bool {
		da, db := danger[a.Instr.ID], danger[b.Instr.ID]
		if da != db {
			return da > db
		}
		if a.EPVF() != b.EPVF() {
			return a.EPVF() > b.EPVF()
		}
		return a.Instr.ID < b.Instr.ID
	})
}

// RankByFrequency orders eligible instructions by descending dynamic
// execution count — the hot-path baseline of prior work the paper compares
// against.
func RankByFrequency(per map[*ir.Instr]*epvf.InstrVuln) Ranking {
	return rank(per, func(a, b *epvf.InstrVuln) bool {
		if a.Dynamic != b.Dynamic {
			return a.Dynamic > b.Dynamic
		}
		return a.Instr.ID < b.Instr.ID
	})
}

func rank(per map[*ir.Instr]*epvf.InstrVuln, less func(a, b *epvf.InstrVuln) bool) Ranking {
	vulns := make([]*epvf.InstrVuln, 0, len(per))
	for in, v := range per {
		if Eligible(in) && v.Dynamic > 0 {
			vulns = append(vulns, v)
		}
	}
	sort.Slice(vulns, func(i, j int) bool { return less(vulns[i], vulns[j]) })
	out := make(Ranking, len(vulns))
	for i, v := range vulns {
		out[i] = v.Instr
	}
	return out
}

// slice computes the static backward compute slice of anchor within its
// function: the chain of eligible value-producing instructions feeding it,
// in dependence order (producers first), stopping at loads' pointer
// sources... more precisely, the walk continues through pure computation
// (arithmetic, conversions, geps, selects) and through loads (which will be
// re-executed), and stops at allocas, calls, mallocs, phis, parameters,
// globals and constants, which become region inputs.
func slice(anchor *ir.Instr) []*ir.Instr {
	var order []*ir.Instr
	seen := map[*ir.Instr]bool{}
	var visit func(in *ir.Instr)
	visit = func(in *ir.Instr) {
		if seen[in] {
			return
		}
		seen[in] = true
		for _, a := range in.Args {
			if d, ok := a.(*ir.Instr); ok && Eligible(d) && d.Parent.Parent == in.Parent.Parent {
				visit(d)
			}
		}
		order = append(order, in)
	}
	visit(anchor)
	return order
}

// CostEstimate returns the dynamic-instruction cost of protecting anchor:
// the shadow slice plus the compare and branch (and, for float or pointer
// anchors, the two conversions feeding the bit-level compare), multiplied
// by the anchor's dynamic execution count. Shadow computation executes
// exactly when the anchor does, so the estimate is exact for the profiled
// input.
func CostEstimate(anchor *ir.Instr, dynCount int64) int64 {
	extra := int64(2) // compare + branch
	if anchor.Ty.IsFloat() || anchor.Ty.IsPtr() {
		extra += 2
	}
	return (int64(len(slice(anchor))) + extra) * dynCount
}

// Plan greedily selects instructions from the ranking whose estimated
// overhead fits within budget (a fraction, e.g. 0.24 for the paper's 24%
// bound) of the baseline dynamic instruction count. Instructions that no
// longer fit are skipped and the scan continues down the ranking, so the
// budget is packed rather than abandoned at the first oversized candidate.
func Plan(ranking Ranking, per map[*ir.Instr]*epvf.InstrVuln, baselineDyn int64, budget float64) []*ir.Instr {
	var selected []*ir.Instr
	var cost int64
	limit := int64(budget * float64(baselineDyn))
	for _, in := range ranking {
		c := CostEstimate(in, per[in].Dynamic)
		if cost+c > limit {
			continue
		}
		cost += c
		selected = append(selected, in)
	}
	return selected
}

// Apply instruments the module in place, protecting each selected
// instruction, and re-finalizes it. Selected instructions must belong to m.
// The module is re-verified after transformation.
func Apply(m *ir.Module, selected []*ir.Instr) error {
	for i, anchor := range selected {
		if anchor.Parent == nil || anchor.Parent.Parent == nil ||
			anchor.Parent.Parent.Parent != m {
			return fmt.Errorf("protect: instruction %d not in module %q", anchor.ID, m.Name)
		}
		if err := protectOne(anchor, i); err != nil {
			return fmt.Errorf("protect: instrumenting %s (id %d): %w", anchor.Op, anchor.ID, err)
		}
	}
	m.Finish()
	if err := ir.Verify(m); err != nil {
		return fmt.Errorf("protect: instrumented module invalid: %w", err)
	}
	return nil
}

// ApplyByID protects the instructions with the given static IDs — used to
// transfer a plan computed on one compile of a program to another compile
// with identical structure (e.g. a larger-input build of the same
// benchmark, as the §V evaluation requires).
func ApplyByID(m *ir.Module, ids []int) error {
	byID := make(map[int]*ir.Instr)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				byID[in.ID] = in
			}
		}
	}
	selected := make([]*ir.Instr, 0, len(ids))
	for _, id := range ids {
		in, ok := byID[id]
		if !ok {
			return fmt.Errorf("protect: no instruction with static ID %d", id)
		}
		selected = append(selected, in)
	}
	return Apply(m, selected)
}

// IDsOf extracts the static IDs of a selection (for ApplyByID).
func IDsOf(selected []*ir.Instr) []int {
	ids := make([]int, len(selected))
	for i, in := range selected {
		ids[i] = in.ID
	}
	return ids
}

// protectOne duplicates the backward compute slice of anchor and inserts
// the shadow comparison plus detector branch immediately after it.
func protectOne(anchor *ir.Instr, serial int) error {
	blk := anchor.Parent
	fn := blk.Parent
	pos := -1
	for i, in := range blk.Instrs {
		if in == anchor {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("anchor not found in its block")
	}

	// Clone the slice in dependence order, remapping operands.
	chain := slice(anchor)
	clones := make(map[*ir.Instr]*ir.Instr, len(chain))
	newInstrs := make([]*ir.Instr, 0, len(chain)+2)
	for ci, orig := range chain {
		c := &ir.Instr{
			Op:     orig.Op,
			Name:   fmt.Sprintf("shadow%d.%d", serial, ci),
			Ty:     orig.Ty,
			Pred:   orig.Pred,
			Elem:   orig.Elem,
			Callee: orig.Callee,
			Parent: blk,
		}
		c.Args = make([]ir.Value, len(orig.Args))
		for ai, a := range orig.Args {
			if d, ok := a.(*ir.Instr); ok {
				if cd, cloned := clones[d]; cloned {
					c.Args[ai] = cd
					continue
				}
			}
			c.Args[ai] = a
		}
		clones[orig] = c
		newInstrs = append(newInstrs, c)
	}
	shadow := clones[anchor]

	// Build the comparison: original != shadow.
	var cmp *ir.Instr
	name := "chk" + strconv.Itoa(serial)
	switch {
	case anchor.Ty.IsFloat():
		// Compare bit patterns, not float values: NaN != NaN would
		// false-positive under fcmp.
		w := ir.IntType(anchor.Ty.Bits)
		b1 := &ir.Instr{Op: ir.OpBitcast, Name: name + ".b1", Ty: w, Args: []ir.Value{anchor}, Parent: blk}
		b2 := &ir.Instr{Op: ir.OpBitcast, Name: name + ".b2", Ty: w, Args: []ir.Value{shadow}, Parent: blk}
		cmp = &ir.Instr{Op: ir.OpICmp, Name: name, Ty: ir.I1, Pred: ir.INE, Args: []ir.Value{b1, b2}, Parent: blk}
		newInstrs = append(newInstrs, b1, b2)
	case anchor.Ty.IsPtr():
		p1 := &ir.Instr{Op: ir.OpPtrToInt, Name: name + ".p1", Ty: ir.I64, Args: []ir.Value{anchor}, Parent: blk}
		p2 := &ir.Instr{Op: ir.OpPtrToInt, Name: name + ".p2", Ty: ir.I64, Args: []ir.Value{shadow}, Parent: blk}
		cmp = &ir.Instr{Op: ir.OpICmp, Name: name, Ty: ir.I1, Pred: ir.INE, Args: []ir.Value{p1, p2}, Parent: blk}
		newInstrs = append(newInstrs, p1, p2)
	default:
		cmp = &ir.Instr{Op: ir.OpICmp, Name: name, Ty: ir.I1, Pred: ir.INE, Args: []ir.Value{anchor, shadow}, Parent: blk}
	}
	newInstrs = append(newInstrs, cmp)

	// Split the block after the anchor: cont carries the rest.
	cont := &ir.Block{Name: blk.Name + ".cont" + strconv.Itoa(serial), Parent: fn}
	cont.Instrs = append(cont.Instrs, blk.Instrs[pos+1:]...)
	for _, in := range cont.Instrs {
		in.Parent = cont
	}

	det := &ir.Block{Name: blk.Name + ".det" + strconv.Itoa(serial), Parent: fn}
	det.Instrs = []*ir.Instr{
		{Op: ir.OpDetect, Ty: ir.Void, Parent: det},
		{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{cont}, Parent: det},
	}

	condbr := &ir.Instr{Op: ir.OpCondBr, Ty: ir.Void, Args: []ir.Value{cmp},
		Blocks: []*ir.Block{det, cont}, Parent: blk}
	blk.Instrs = append(blk.Instrs[:pos+1:pos+1], append(newInstrs, condbr)...)

	// Successor phis that named blk as a predecessor must now name cont,
	// which holds the original terminator.
	if term := cont.Terminator(); term != nil {
		for _, succ := range term.Blocks {
			for _, in := range succ.Instrs {
				if in.Op != ir.OpPhi {
					break
				}
				for pi, from := range in.PhiIn {
					if from == blk {
						in.PhiIn[pi] = cont
					}
				}
			}
		}
	}

	fn.Blocks = append(fn.Blocks, det, cont)
	return nil
}
