package protect

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/epvf"
	"repro/internal/fi"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
)

const kernelSrc = `
void main() {
  long *a = malloc(32 * 8);
  int i;
  for (i = 0; i < 32; i = i + 1) { a[i] = i * 7; }
  long s = 0;
  for (i = 0; i < 32; i = i + 1) { s = s + a[i]; }
  output(s);
  free(a);
}
`

func analyzed(t *testing.T, src string) (*ir.Module, *epvf.Analysis, *interp.Result) {
	t.Helper()
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a, g, err := epvf.AnalyzeModule(m, epvf.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return m, a, g
}

func TestEligible(t *testing.T) {
	add := &ir.Instr{Op: ir.OpAdd, Ty: ir.I32}
	if !Eligible(add) {
		t.Error("add must be eligible")
	}
	for _, op := range []ir.Opcode{ir.OpAlloca, ir.OpCall, ir.OpMalloc, ir.OpPhi, ir.OpStore, ir.OpBr} {
		if Eligible(&ir.Instr{Op: op}) {
			t.Errorf("%s must not be eligible", op)
		}
	}
	if !Eligible(&ir.Instr{Op: ir.OpLoad, Ty: ir.I32}) {
		t.Error("load must be eligible")
	}
}

func TestRankingsOrdered(t *testing.T) {
	_, a, _ := analyzed(t, kernelSrc)
	per := a.PerInstruction()
	byE := RankByEPVF(per)
	byF := RankByFrequency(per)
	if len(byE) == 0 || len(byE) != len(byF) {
		t.Fatalf("ranking sizes: %d vs %d", len(byE), len(byF))
	}
	for i := 1; i < len(byE); i++ {
		if per[byE[i-1]].EPVF() < per[byE[i]].EPVF() {
			t.Fatal("ePVF ranking not descending")
		}
		if per[byF[i-1]].Dynamic < per[byF[i]].Dynamic {
			t.Fatal("frequency ranking not descending")
		}
	}
	for _, in := range byE {
		if !Eligible(in) {
			t.Fatalf("ineligible %s in ranking", in.Op)
		}
	}
}

func TestPlanRespectsBudget(t *testing.T) {
	_, a, g := analyzed(t, kernelSrc)
	per := a.PerInstruction()
	ranking := RankByEPVF(per)
	sel := Plan(ranking, per, g.DynInstrs, 0.24)
	if len(sel) == 0 {
		t.Fatal("empty plan at 24% budget")
	}
	var cost int64
	for _, in := range sel {
		cost += CostEstimate(in, per[in].Dynamic)
	}
	if float64(cost) > 0.24*float64(g.DynInstrs) {
		t.Errorf("plan cost %d exceeds budget of %d", cost, int64(0.24*float64(g.DynInstrs)))
	}
	// A larger budget must select at least as many instructions.
	selBig := Plan(ranking, per, g.DynInstrs, 0.5)
	if len(selBig) < len(sel) {
		t.Error("larger budget selected fewer instructions")
	}
}

func TestApplyPreservesGoldenBehaviour(t *testing.T) {
	m, a, g := analyzed(t, kernelSrc)
	per := a.PerInstruction()
	sel := Plan(RankByEPVF(per), per, g.DynInstrs, 0.24)
	if err := Apply(m, sel); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	res, err := interp.Run(m, interp.Config{})
	if err != nil {
		t.Fatalf("protected run: %v", err)
	}
	if res.Exception != nil {
		t.Fatalf("protected golden run raised %v (false detection?)", res.Exception)
	}
	if len(res.Outputs) != len(g.Outputs) {
		t.Fatalf("output count changed: %d vs %d", len(res.Outputs), len(g.Outputs))
	}
	for i := range res.Outputs {
		if res.Outputs[i].Bits != g.Outputs[i].Bits {
			t.Fatal("protected program changed its output")
		}
	}
	overhead := float64(res.DynInstrs-g.DynInstrs) / float64(g.DynInstrs)
	if overhead <= 0 {
		t.Error("protection added no dynamic instructions")
	}
	if overhead > 0.30 {
		t.Errorf("measured overhead %.3f far above the 24%% estimate", overhead)
	}
	t.Logf("protected %d instructions, overhead %.3f", len(sel), overhead)
}

func TestProtectionDetectsInjectedFaults(t *testing.T) {
	m, a, g := analyzed(t, kernelSrc)
	per := a.PerInstruction()
	sel := Plan(RankByEPVF(per), per, g.DynInstrs, 0.24)
	if err := Apply(m, sel); err != nil {
		t.Fatal(err)
	}
	// Re-record the protected golden run, then inject into shadow-covered
	// defs: some runs must end in Detected.
	gp, err := interp.Run(m, interp.Config{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fi.RunCampaign(m, gp, fi.Config{Runs: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[fi.OutcomeDetected] == 0 {
		t.Error("no faults detected by the duplication checks in 400 injections")
	}
}

func TestProtectionReducesSDCRate(t *testing.T) {
	// The core §V claim on one benchmark: at a fixed overhead budget,
	// ePVF-guided duplication lowers the SDC rate vs no protection.
	b, _ := bench.Get("mm")
	base := b.MustModule(1)
	a, g, err := epvf.AnalyzeModule(base, epvf.Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseFI, err := fi.RunCampaign(base, g, fi.Config{Runs: 500, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	per := a.PerInstruction()
	sel := Plan(RankByEPVF(per), per, g.DynInstrs, 0.24)
	prot := b.MustModule(1)
	if err := ApplyByID(prot, IDsOf(sel)); err != nil {
		t.Fatal(err)
	}
	gp, err := interp.Run(prot, interp.Config{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Exception != nil {
		t.Fatalf("protected golden run failed: %v", gp.Exception)
	}
	protFI, err := fi.RunCampaign(prot, gp, fi.Config{Runs: 500, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	baseSDC := baseFI.Rate(fi.OutcomeSDC)
	protSDC := protFI.Rate(fi.OutcomeSDC)
	t.Logf("SDC rate: baseline %.3f -> protected %.3f (detected %.3f)",
		baseSDC, protSDC, protFI.Rate(fi.OutcomeDetected))
	if protSDC >= baseSDC {
		t.Errorf("ePVF-guided protection did not reduce the SDC rate: %.3f -> %.3f",
			baseSDC, protSDC)
	}
}

func TestApplyByIDRejectsUnknown(t *testing.T) {
	m, _, _ := analyzed(t, kernelSrc)
	if err := ApplyByID(m, []int{1 << 20}); err == nil {
		t.Error("ApplyByID accepted a bogus ID")
	}
}

func TestApplyRejectsForeignInstr(t *testing.T) {
	m1, a, g := analyzed(t, kernelSrc)
	_ = m1
	per := a.PerInstruction()
	sel := Plan(RankByEPVF(per), per, g.DynInstrs, 0.1)
	if len(sel) == 0 {
		t.Skip("no selection")
	}
	m2, err := lang.Compile("other", kernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(m2, sel[:1]); err == nil {
		t.Error("Apply accepted an instruction from a different module")
	}
}

func TestProtectAnchorInLoopWithPhis(t *testing.T) {
	// Splitting a loop block must rewrite successor phis; build a module
	// with explicit phis and protect an instruction in the loop body.
	b := ir.NewBuilder("phi")
	b.NewFunc("main", ir.Void)
	entry := b.CurBlock()
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	i := b.Phi(ir.I32)
	acc := b.Phi(ir.I32)
	cond := b.ICmp(ir.ISLT, i, ir.ConstInt(ir.I32, 10))
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	doubled := b.Mul(i, ir.ConstInt(ir.I32, 2))
	accNext := b.Add(acc, doubled)
	iNext := b.Add(i, ir.ConstInt(ir.I32, 1))
	b.Br(header)
	b.AddIncoming(i, ir.ConstInt(ir.I32, 0), entry)
	b.AddIncoming(i, iNext, body)
	b.AddIncoming(acc, ir.ConstInt(ir.I32, 0), entry)
	b.AddIncoming(acc, accNext, body)
	b.SetBlock(exit)
	b.Output(acc)
	b.Ret(nil)
	m := b.MustModule()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	golden, err := interp.Run(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}

	if err := Apply(m, []*ir.Instr{doubled}); err != nil {
		t.Fatalf("Apply on loop body with phis: %v", err)
	}
	res, err := interp.Run(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exception != nil {
		t.Fatalf("protected phi-loop run raised %v", res.Exception)
	}
	if res.Outputs[0].Bits != golden.Outputs[0].Bits {
		t.Errorf("output changed: %d vs %d", res.Outputs[0].Bits, golden.Outputs[0].Bits)
	}
}

func TestProtectFloatUsesBitComparison(t *testing.T) {
	src := `
void main() {
  double *v = malloc(16 * 8);
  int i;
  for (i = 0; i < 16; i = i + 1) { v[i] = (double)i * 1.5; }
  double s = 0.0;
  for (i = 0; i < 16; i = i + 1) { s = s + v[i]; }
  output(s);
  free(v);
}`
	m, a, g := analyzed(t, src)
	per := a.PerInstruction()
	sel := Plan(RankByEPVF(per), per, g.DynInstrs, 0.24)
	if err := Apply(m, sel); err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exception != nil {
		t.Fatalf("float-protected run raised %v", res.Exception)
	}
	if res.Outputs[0].Bits != g.Outputs[0].Bits {
		t.Error("float protection changed the output")
	}
}

func TestRankByEPVFDensityPrefersCheapCoverage(t *testing.T) {
	_, a, g := analyzed(t, kernelSrc)
	per := a.PerInstruction()
	dens := RankByEPVFDensity(per)
	if len(dens) == 0 {
		t.Fatal("empty density ranking")
	}
	// Density must be non-increasing down the ranking.
	density := func(in *ir.Instr) float64 {
		v := per[in]
		return float64(v.ACEBits-v.CrashBits) / float64(CostEstimate(in, v.Dynamic))
	}
	for i := 1; i < len(dens); i++ {
		if density(dens[i-1]) < density(dens[i])-1e-12 {
			t.Fatal("density ranking not descending")
		}
	}
	// A density plan covers at least as many instructions as the plain
	// ePVF plan under the same budget (cheaper anchors pack better).
	plain := Plan(RankByEPVF(per), per, g.DynInstrs, 0.24)
	packed := Plan(dens, per, g.DynInstrs, 0.24)
	if len(packed) < len(plain) {
		t.Errorf("density plan (%d) smaller than plain ePVF plan (%d)", len(packed), len(plain))
	}
}

func TestCostEstimateCountsCompareConversions(t *testing.T) {
	m, _, _ := analyzed(t, `
void main() {
  double *v = malloc(8 * 8);
  int i;
  for (i = 0; i < 8; i = i + 1) { v[i] = (double)i; }
  output(v[3]);
  free(v);
}`)
	var fAnchor, iAnchor *ir.Instr
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpSIToFP && fAnchor == nil {
					fAnchor = in
				}
				if in.Op == ir.OpAdd && in.Ty.Equal(ir.I32) && iAnchor == nil {
					iAnchor = in
				}
			}
		}
	}
	if fAnchor == nil || iAnchor == nil {
		t.Fatal("anchors not found")
	}
	// A float anchor with the same chain length costs 2 more dynamic
	// instructions per instance (the bitcasts feeding the compare).
	fCost := CostEstimate(fAnchor, 1)
	fChain := fCost - 4
	iCost := CostEstimate(iAnchor, 1)
	iChain := iCost - 2
	if fChain <= 0 || iChain <= 0 {
		t.Errorf("cost model inconsistent: float %d, int %d", fCost, iCost)
	}
}
