package rangeprop

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/ddg"
	"repro/internal/interp"
)

// BenchmarkAnalyze measures the crash+propagation model over a full
// benchmark trace — the dominant cost of the ePVF analysis (Fig. 10).
func BenchmarkAnalyze(b *testing.B) {
	bb, _ := bench.Get("lud")
	m := bb.MustModule(1)
	res, err := interp.Run(m, interp.Config{Record: true})
	if err != nil {
		b.Fatal(err)
	}
	g := ddg.New(res.Trace)
	mask := g.ACEMask()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Analyze(res.Trace, g, mask, Config{})
		if r.CrashBitCount == 0 {
			b.Fatal("no crash bits")
		}
	}
}

// BenchmarkAnalyzeExact measures the exact-oracle variant.
func BenchmarkAnalyzeExact(b *testing.B) {
	bb, _ := bench.Get("lud")
	m := bb.MustModule(1)
	res, err := interp.Run(m, interp.Config{Record: true})
	if err != nil {
		b.Fatal(err)
	}
	g := ddg.New(res.Trace)
	mask := g.ACEMask()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(res.Trace, g, mask, Config{ExactAddress: true})
	}
}
