// Package rangeprop implements the paper's propagation model (§III-C,
// Algorithms 1 and 2, Table III): starting from every load/store in the ACE
// graph, it propagates the crash model's valid-address range backward along
// the slice of the address computation, inverting each instruction's
// semantics to derive, per operand use, the range of values that keep the
// eventual memory access in bounds — and therefore the set of bits whose
// flip would crash the program (the CRASHING_BIT_LIST).
package rangeprop

import (
	"math"
	"sync"

	"repro/internal/crash"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/trace"
)

// DefaultMaxDepth bounds how many def-use hops a single backward-slice walk
// follows. Address slices are shallow (index arithmetic plus spills through
// the stack); deep value chains re-enter through nearer accesses anyway, so
// a modest bound preserves accuracy while keeping the analysis near-linear
// — the engineering fix the paper's scalability discussion (§VI-A) calls
// for.
const DefaultMaxDepth = 24

// Config controls the propagation analysis.
type Config struct {
	// MaxDepth bounds the per-access backward walk; zero means
	// DefaultMaxDepth, negative means unbounded.
	MaxDepth int
	// ExactAddress uses the exact multi-VMA oracle for the bits of the
	// direct address operand instead of the single-interval bound
	// (ablation: the paper's Algorithm 2 is interval-only).
	ExactAddress bool
	// Model is the crash model; nil means crash.NewModel().
	Model *crash.Model
	// Parallel shards the per-access backward walks over this many worker
	// goroutines — the "threads can be assigned to one backward slice
	// each" parallelism of the paper's §VI-A. Zero or one runs serially.
	// Results are identical either way (crash masks merge by union).
	Parallel int
}

// Result is the computed CRASHING_BIT_LIST plus aggregate counts.
type Result struct {
	// CrashBits maps each dynamic operand use to the mask of bits
	// predicted to crash the program if flipped at that use.
	CrashBits map[trace.Use]uint64
	// DefCrashBits aggregates CrashBits at register granularity: for each
	// value-defining event, the union of the crash masks of all its uses.
	// A register bit is crash-causing if corrupting it makes any consumer
	// access fault — the CRASHING_BIT_LIST as the recall study reads it.
	DefCrashBits map[int64]uint64
	// CrashBitCount is the number of (register, bit) pairs predicted to
	// crash, at def granularity — the quantity subtracted from the ACE
	// bits in Eq. 2.
	CrashBitCount int64
	// UseCrashBitCount is the finer-grained (use, bit) tally.
	UseCrashBitCount int64
	// AccessesAnalyzed counts the ACE-graph loads/stores that seeded
	// walks.
	AccessesAnalyzed int64
}

// Predicted reports whether flipping the given bit at the given use is
// predicted to crash.
func (r *Result) Predicted(u trace.Use, bit int) bool {
	return r.CrashBits[u]&(1<<uint(bit)) != 0
}

// PredictedDef reports whether flipping the given bit of the register
// defined at event ev is predicted to crash.
func (r *Result) PredictedDef(ev int64, bit int) bool {
	return r.DefCrashBits[ev]&(1<<uint(bit)) != 0
}

// PredictedDefMask reports whether a multi-bit fault (XOR mask) in the
// register defined at event ev is predicted to crash: true when any
// flipped bit is crash-causing. (Two flips cancelling each other inside a
// range is possible in principle but vanishingly rare.)
func (r *Result) PredictedDefMask(ev int64, mask uint64) bool {
	return r.DefCrashBits[ev]&mask != 0
}

// DefMask returns the full predicted crash-bit mask of the register
// defined at event ev — zero when no bit of that register is on the
// CRASHING_BIT_LIST. This is the per-bit export the attribution ledger
// joins against FI ground truth.
func (r *Result) DefMask(ev int64) uint64 {
	return r.DefCrashBits[ev]
}

// Seeds returns the ACE-graph memory accesses of the trace — the walk
// seeds of ITERATE_OVER_ACE_GRAPH — in event order.
func Seeds(tr *trace.Trace, aceMask []bool) []int64 {
	var accesses []int64
	for i := range tr.Events {
		if aceMask[i] && tr.Events[i].IsMemAccess() {
			accesses = append(accesses, int64(i))
		}
	}
	return accesses
}

// Analyze runs ITERATE_OVER_ACE_GRAPH: for every load/store event inside
// aceMask it obtains the crash-model boundary and propagates it along the
// backward slice of the address.
func Analyze(tr *trace.Trace, g *ddg.Graph, aceMask []bool, cfg Config) *Result {
	if cfg.Model == nil {
		cfg.Model = crash.NewModel()
	}
	maxDepth := cfg.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	accesses := Seeds(tr, aceMask)

	var res *Result
	workers := cfg.Parallel
	if workers > len(accesses) {
		workers = len(accesses)
	}
	if workers <= 1 {
		res = AnalyzeSeeds(tr, cfg, accesses, nil)
	} else {
		// Shard walks across workers with worker-local result maps, then
		// merge by union — identical to the serial result.
		res = &Result{
			CrashBits:    make(map[trace.Use]uint64),
			DefCrashBits: make(map[int64]uint64),
		}
		parts := make([]*Result, workers)
		var wg sync.WaitGroup
		next := make(chan int64)
		for w := 0; w < workers; w++ {
			part := &Result{
				CrashBits:    make(map[trace.Use]uint64),
				DefCrashBits: make(map[int64]uint64),
			}
			parts[w] = part
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ev := range next {
					analyzeAccess(tr, part, cfg, ev, maxDepth, nil)
				}
			}()
		}
		for _, ev := range accesses {
			next <- ev
		}
		close(next)
		wg.Wait()
		for _, part := range parts {
			res.AccessesAnalyzed += part.AccessesAnalyzed
			for u, m := range part.CrashBits {
				res.CrashBits[u] |= m
			}
		}
	}
	res.Finalize(tr)
	if r := obs.Default(); r != nil {
		r.Counter("epvf_rangeprop_analyses_total").Inc()
		r.Counter("epvf_rangeprop_accesses_total").Add(res.AccessesAnalyzed)
		r.Counter("epvf_rangeprop_crash_bits_total").Add(res.CrashBitCount)
	}
	return res
}

// AnalyzeSeeds runs the boundary check and backward walk for the given
// seed accesses only, serially, and returns the raw per-use crash masks
// (Finalize has not been called: DefCrashBits and the counts are not yet
// populated). Seed subsets are how the incremental layer (internal/inc)
// sections the model: per-seed walks are independent and their masks merge
// by union, so a whole-trace Analyze equals the union of AnalyzeSeeds over
// any partition of its seeds.
//
// touch, when non-nil, is invoked with the index of every event whose
// content the walks read — the seeds themselves plus every event reached
// along the backward slices. The incremental layer records this footprint
// to know which program sections a cached walk result depends on. cfg
// defaulting matches Analyze (nil Model, zero MaxDepth).
func AnalyzeSeeds(tr *trace.Trace, cfg Config, seeds []int64, touch func(ev int64)) *Result {
	if cfg.Model == nil {
		cfg.Model = crash.NewModel()
	}
	maxDepth := cfg.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	res := &Result{
		CrashBits:    make(map[trace.Use]uint64),
		DefCrashBits: make(map[int64]uint64),
	}
	for _, ev := range seeds {
		analyzeAccess(tr, res, cfg, ev, maxDepth, touch)
	}
	return res
}

// Finalize aggregates the per-use crash masks into the def-granular view:
// DefCrashBits (union of every use's mask at its defining event) and the
// two bit tallies. Idempotent inputs are not supported — call it exactly
// once, after all CrashBits unions are complete.
func (r *Result) Finalize(tr *trace.Trace) {
	for u, m := range r.CrashBits {
		r.UseCrashBitCount += int64(crash.PopCount(m))
		e := &tr.Events[u.Event]
		if u.Op < len(e.OpDefs) && e.OpDefs[u.Op] != trace.NoDef {
			r.DefCrashBits[e.OpDefs[u.Op]] |= m
		}
	}
	for _, m := range r.DefCrashBits {
		r.CrashBitCount += int64(crash.PopCount(m))
	}
}

// analyzeAccess runs the boundary check and backward walk for one
// ACE-graph memory access.
func analyzeAccess(tr *trace.Trace, res *Result, cfg Config, ev int64, maxDepth int, touch func(ev int64)) {
	e := &tr.Events[ev]
	bound, ok := cfg.Model.Boundary(tr, ev)
	if !ok {
		// The boundary itself read the seed event; a cached section must
		// still know it depends on it.
		if touch != nil {
			touch(ev)
		}
		return
	}
	res.AccessesAnalyzed++
	ptrOp := 0
	if e.Instr.Op == ir.OpStore {
		ptrOp = 1
	}
	crashCalc(tr, res, cfg, ev, ptrOp, bound, maxDepth, touch)
}

// item is one worklist entry: operand use (Ev, Op) whose value must remain
// within R for the seeding access not to fault.
type item struct {
	ev    int64
	op    int
	r     crash.Bound
	depth int
	// direct marks the seeding address use, for the exact-oracle mode.
	direct bool
}

// crashCalc implements CRASH_CALC/GET_RANGE_FOR_CRASH_BITS for one memory
// access: a worklist walk over the backward slice of its address operand.
// touch (optional) receives the index of every event whose recorded content
// the walk reads: each processed worklist item and each def handed to
// invert (invert inspects the def event even when it yields no items).
func crashCalc(tr *trace.Trace, res *Result, cfg Config, accessEv int64, ptrOp int, bound crash.Bound, maxDepth int, touch func(ev int64)) {
	visited := make(map[int64]bool)
	work := []item{{ev: accessEv, op: ptrOp, r: bound, direct: true}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]

		if touch != nil {
			touch(it.ev)
		}
		e := &tr.Events[it.ev]
		v := e.Ops[it.op]
		width := trace.OperandWidth(e.Instr, it.op)
		if trace.InjectableOperand(e.Instr, it.op) || e.Instr.Op == ir.OpPhi {
			u := trace.Use{Event: it.ev, Op: it.op}
			var mask uint64
			if it.direct && cfg.ExactAddress {
				mask = cfg.Model.MaskExact(tr, it.ev, v, width)
			} else {
				mask = crash.MaskFromBound(v, width, it.r)
			}
			if mask != 0 {
				res.CrashBits[u] |= mask
			}
		}

		def := e.OpDefs[it.op]
		if def == trace.NoDef || visited[def] {
			continue
		}
		if maxDepth > 0 && it.depth >= maxDepth {
			continue
		}
		visited[def] = true
		if touch != nil {
			touch(def)
		}
		for _, nxt := range invert(tr, def, it.r) {
			nxt.depth = it.depth + 1
			work = append(work, nxt)
		}
	}
}

// invert applies Table III: given that the value produced by event def must
// stay within r, derive ranges for def's own operand uses.
func invert(tr *trace.Trace, def int64, r crash.Bound) []item {
	e := &tr.Events[def]
	in := e.Instr
	mk := func(op int, b crash.Bound) item { return item{ev: def, op: op, r: b} }

	signedOp := func(op int) int64 {
		return ir.SignExtend(e.Ops[op], trace.OperandWidth(in, op))
	}

	switch in.Op {
	case ir.OpAdd:
		// dest = op0 + op1: op_i within [lo - other, hi - other].
		return []item{
			mk(0, shift(r, -signedOp(1))),
			mk(1, shift(r, -signedOp(0))),
		}
	case ir.OpSub:
		// dest = op0 - op1.
		return []item{
			mk(0, shift(r, signedOp(1))),
			mk(1, crash.Bound{Lo: satSub(signedOp(0), r.Hi), Hi: satSub(signedOp(0), r.Lo)}),
		}
	case ir.OpMul:
		var out []item
		if b := divRange(r, signedOp(1)); !b.IsUnconstrained() {
			out = append(out, mk(0, b))
		}
		if b := divRange(r, signedOp(0)); !b.IsUnconstrained() {
			out = append(out, mk(1, b))
		}
		return out
	case ir.OpSDiv, ir.OpUDiv:
		// dest = op0 / c (truncating). Invertible for positive c and
		// non-negative ranges: op0 within [lo*c, hi*c + c - 1].
		c := signedOp(1)
		if c > 0 && r.Lo >= 0 {
			return []item{mk(0, crash.Bound{
				Lo: satMul(r.Lo, c),
				Hi: satAdd(satMul(r.Hi, c), c-1),
			})}
		}
		return nil
	case ir.OpShl:
		// dest = op0 * 2^k.
		k := signedOp(1)
		if k >= 0 && k < 63 {
			if b := divRange(r, int64(1)<<uint(k)); !b.IsUnconstrained() {
				return []item{mk(0, b)}
			}
		}
		return nil
	case ir.OpGEP:
		// dest = base + stride*idx.
		stride := in.Elem.Size()
		base := signedOp(0)
		idx := signedOp(1)
		out := []item{mk(0, shift(r, -satMul(stride, idx)))}
		if stride > 0 {
			lo := ceilDiv(satSub(r.Lo, base), stride)
			hi := floorDiv(satSub(r.Hi, base), stride)
			out = append(out, mk(1, crash.Bound{Lo: lo, Hi: hi}))
		}
		return out
	case ir.OpBitcast, ir.OpPtrToInt, ir.OpIntToPtr:
		return []item{mk(0, r)}
	case ir.OpZExt:
		w := in.Args[0].Type().BitWidth()
		return []item{mk(0, intersect(r, crash.Bound{Lo: 0, Hi: maxOfWidthU(w)}))}
	case ir.OpSExt:
		w := in.Args[0].Type().BitWidth()
		return []item{mk(0, intersect(r, widthBound(w)))}
	case ir.OpLoad:
		// Value identity through memory: the loaded value equals the value
		// operand of the producing store. (The store's own address operand
		// is seeded separately by its own boundary check.)
		if e.MemDef != trace.NoDef {
			return []item{{ev: e.MemDef, op: 0, r: r}}
		}
		return nil
	case ir.OpPhi:
		return []item{mk(0, r)}
	case ir.OpSelect:
		// The chosen arm carried the value; determine it from the recorded
		// condition.
		if e.Ops[0]&1 != 0 {
			return []item{mk(1, r)}
		}
		return []item{mk(2, r)}
	default:
		// srem/urem, bitwise logic, shifts right, float ops, calls:
		// not invertible to an interval (Table III stops here); the walk
		// terminates conservatively (no crash bits claimed upstream).
		return nil
	}
}

// shift translates a bound by delta with saturation.
func shift(r crash.Bound, delta int64) crash.Bound {
	return crash.Bound{Lo: satAdd(r.Lo, delta), Hi: satAdd(r.Hi, delta)}
}

// divRange inverts dest = c * op: the range of op keeping c*op within r.
// Returns Unconstrained when not invertible (c == 0).
func divRange(r crash.Bound, c int64) crash.Bound {
	switch {
	case c > 0:
		return crash.Bound{Lo: ceilDiv(r.Lo, c), Hi: floorDiv(r.Hi, c)}
	case c < 0:
		return crash.Bound{Lo: ceilDiv(r.Hi, c), Hi: floorDiv(r.Lo, c)}
	default:
		return crash.Unconstrained
	}
}

func intersect(a, b crash.Bound) crash.Bound {
	out := a
	if b.Lo > out.Lo {
		out.Lo = b.Lo
	}
	if b.Hi < out.Hi {
		out.Hi = b.Hi
	}
	return out
}

// widthBound returns the representable signed range of the given width.
func widthBound(w int) crash.Bound {
	if w >= 64 {
		return crash.Unconstrained
	}
	return crash.Bound{Lo: -(int64(1) << uint(w-1)), Hi: int64(1)<<uint(w-1) - 1}
}

// maxOfWidthU returns the maximum unsigned value of the given width as an
// int64 (saturated).
func maxOfWidthU(w int) int64 {
	if w >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(w) - 1
}

func satAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

func satSub(a, b int64) int64 {
	if b == math.MinInt64 {
		if a >= 0 {
			return math.MaxInt64
		}
		return satAdd(a+1, math.MaxInt64)
	}
	return satAdd(a, -b)
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return p
}

// floorDiv divides rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// ceilDiv divides rounding toward positive infinity.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
