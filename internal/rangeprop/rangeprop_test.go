package rangeprop

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/crash"
	"repro/internal/ddg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/trace"
)

func analyzeSrc(t *testing.T, src string, cfg Config) (*trace.Trace, *Result) {
	t.Helper()
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(m, interp.Config{Record: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Exception != nil {
		t.Fatalf("golden exception: %v", res.Exception)
	}
	tr := res.Trace
	g := ddg.New(tr)
	return tr, Analyze(tr, g, g.ACEMask(), cfg)
}

const arraySumSrc = `
void main() {
  long *a = malloc(64 * 8);
  int i;
  for (i = 0; i < 64; i = i + 1) { a[i] = i * 2; }
  long s = 0;
  for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
  output(s);
  free(a);
}
`

func TestAnalyzeFindsCrashBits(t *testing.T) {
	tr, res := analyzeSrc(t, arraySumSrc, Config{})
	if res.AccessesAnalyzed == 0 {
		t.Fatal("no accesses analyzed")
	}
	if res.CrashBitCount == 0 || res.UseCrashBitCount == 0 {
		t.Fatal("no crash bits found")
	}
	if len(res.DefCrashBits) == 0 {
		t.Fatal("no def-level crash bits")
	}
	// Every address-producing gep def must have crash bits (flipping its
	// high bits escapes the heap segment).
	geps, gepsWithBits := 0, 0
	for i := range tr.Events {
		if tr.Events[i].Instr.Op != ir.OpGEP {
			continue
		}
		geps++
		if res.DefCrashBits[int64(i)] != 0 {
			gepsWithBits++
		}
	}
	if geps == 0 || gepsWithBits < geps*9/10 {
		t.Errorf("geps=%d with crash bits=%d; want nearly all", geps, gepsWithBits)
	}
}

func TestHighAddressBitsAreCrashBits(t *testing.T) {
	tr, res := analyzeSrc(t, arraySumSrc, Config{})
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Instr.Op != ir.OpGEP {
			continue
		}
		mask := res.DefCrashBits[int64(i)]
		// Bits 40..63 of a heap address always escape any segment.
		for bit := 40; bit < 64; bit++ {
			if mask&(1<<uint(bit)) == 0 {
				t.Fatalf("gep at event %d: high bit %d not marked crash-causing (mask=%#x)",
					i, bit, mask)
			}
		}
		return
	}
	t.Fatal("no gep found")
}

func TestPredictedCrashBitsActuallyCrash(t *testing.T) {
	// Deterministic-layout precision must be very high: inject every 8th
	// predicted (def, bit) pair and demand > 90% crashes.
	src := arraySumSrc
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	tr, res := analyzeSrc(t, src, Config{})
	_ = tr
	total, crashed, tried := 0, 0, 0
	for def, mask := range res.DefCrashBits {
		for bit := 0; bit < 64; bit++ {
			if mask&(1<<uint(bit)) == 0 {
				continue
			}
			total++
			if total%8 != 0 {
				continue
			}
			tried++
			inj := &interp.Injection{Event: def, Bit: bit}
			r, err := interp.Run(m, interp.Config{Injection: inj, MaxDynInstrs: 10_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if r.Exception != nil && r.Exception.Kind == interp.ExcSegFault {
				crashed++
			}
		}
	}
	if tried < 20 {
		t.Fatalf("too few predicted bits sampled: %d", tried)
	}
	// Not every predicted bit crashes: a flipped index is often seen by the
	// loop bound check too, which exits before the bad access executes —
	// the control-flow blindness that keeps the paper's precision at 92%
	// rather than 100%. Demand a strong majority.
	if rate := float64(crashed) / float64(tried); rate < 0.7 {
		t.Errorf("deterministic precision = %.2f (%d/%d), want > 0.7", rate, crashed, tried)
	}
}

func TestMaxDepthBoundsWork(t *testing.T) {
	_, shallow := analyzeSrc(t, arraySumSrc, Config{MaxDepth: 2})
	_, deep := analyzeSrc(t, arraySumSrc, Config{MaxDepth: 40})
	if shallow.UseCrashBitCount >= deep.UseCrashBitCount {
		t.Errorf("deeper walks found no additional crash bits: %d vs %d",
			shallow.UseCrashBitCount, deep.UseCrashBitCount)
	}
}

func TestExactAddressModeDiffers(t *testing.T) {
	// The exact oracle can only remove bits relative to the interval model
	// (a flip landing in another VMA is not a crash).
	_, interval := analyzeSrc(t, arraySumSrc, Config{})
	_, exact := analyzeSrc(t, arraySumSrc, Config{ExactAddress: true})
	if exact.UseCrashBitCount > interval.UseCrashBitCount {
		t.Errorf("exact mode found MORE crash bits (%d) than interval mode (%d)",
			exact.UseCrashBitCount, interval.UseCrashBitCount)
	}
}

func TestPredictedAccessors(t *testing.T) {
	_, res := analyzeSrc(t, arraySumSrc, Config{})
	found := false
	for u, mask := range res.CrashBits {
		for bit := 0; bit < 64; bit++ {
			if mask&(1<<uint(bit)) != 0 {
				if !res.Predicted(u, bit) {
					t.Fatal("Predicted disagrees with mask")
				}
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no crash bits to check")
	}
	if res.Predicted(trace.Use{Event: 1 << 40, Op: 9}, 3) {
		t.Error("Predicted true for unknown use")
	}
	if res.PredictedDef(1<<40, 3) {
		t.Error("PredictedDef true for unknown def")
	}
}

// Transfer-function property tests: for each invertible opcode, values
// inside the computed operand range keep the recomputed result within the
// target range.

func TestShiftRangeProperty(t *testing.T) {
	f := func(lo, hi, delta int32) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		r := crash.Bound{Lo: int64(lo), Hi: int64(hi)}
		s := shift(r, int64(delta))
		// op + delta within r  <=>  op within s... shift(r, -delta) maps
		// dest range to operand range for dest = op + delta.
		mid := (s.Lo + s.Hi) / 2
		for _, op := range []int64{s.Lo, mid, s.Hi} {
			dest := op - int64(delta) // because s = r shifted by +delta
			if dest < r.Lo || dest > r.Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDivRangeProperty(t *testing.T) {
	// dest = c*op must stay within r for every op inside divRange(r, c).
	f := func(lo, hi int32, c int16) bool {
		if c == 0 {
			return divRange(crash.Bound{Lo: int64(lo), Hi: int64(hi)}, 0).IsUnconstrained()
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		r := crash.Bound{Lo: int64(lo), Hi: int64(hi)}
		g := divRange(r, int64(c))
		if g.Empty() {
			return true // no valid operand values; nothing to verify
		}
		for _, op := range []int64{g.Lo, (g.Lo + g.Hi) / 2, g.Hi} {
			dest := int64(c) * op
			if dest < r.Lo || dest > r.Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	tests := []struct {
		a, b, floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{7, -2, -4, -3},
		{-7, -2, 3, 4},
		{6, 3, 2, 2},
		{0, 5, 0, 0},
	}
	for _, tt := range tests {
		if got := floorDiv(tt.a, tt.b); got != tt.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.floor)
		}
		if got := ceilDiv(tt.a, tt.b); got != tt.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.ceil)
		}
	}
}

func TestFloorCeilDivProperty(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		fd := floorDiv(int64(a), int64(b))
		cd := ceilDiv(int64(a), int64(b))
		exact := float64(a) / float64(b)
		return fd == int64(math.Floor(exact)) && cd == int64(math.Ceil(exact))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if satAdd(math.MaxInt64, 1) != math.MaxInt64 {
		t.Error("satAdd overflow not saturated")
	}
	if satAdd(math.MinInt64, -1) != math.MinInt64 {
		t.Error("satAdd underflow not saturated")
	}
	if satAdd(1, 2) != 3 {
		t.Error("satAdd basic")
	}
	if satSub(0, math.MinInt64) != math.MaxInt64 {
		t.Error("satSub of MinInt64 must saturate high")
	}
	if satSub(10, 4) != 6 {
		t.Error("satSub basic")
	}
	if satMul(math.MaxInt64, 2) != math.MaxInt64 {
		t.Error("satMul overflow not saturated")
	}
	if satMul(math.MaxInt64, -2) != math.MinInt64 {
		t.Error("satMul negative overflow not saturated")
	}
	if satMul(3, 4) != 12 || satMul(0, 99) != 0 {
		t.Error("satMul basic")
	}
}

func TestGEPInversionCoversIndexes(t *testing.T) {
	// A 2D-style access a[i*n+j]: flipping sign or high bits of the index
	// chain must be predicted, and small low-bit flips of j (which stay in
	// the allocation) must not.
	src := `
void main() {
  int n = 16;
  long *a = malloc(16 * 16 * 8);
  int i;
  int j;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      a[i * n + j] = i + j;
    }
  }
  output(a[0]);
  output(a[n * n - 1]);
  free(a);
}`
	tr, res := analyzeSrc(t, src, Config{})
	// Find the i*n+j add def (i32 add feeding a sext feeding the gep).
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Instr.Op != ir.OpAdd || !e.Instr.Type().Equal(ir.I32) {
			continue
		}
		mask, ok := res.DefCrashBits[int64(i)]
		if !ok {
			continue
		}
		if mask&(1<<31) == 0 {
			t.Fatalf("sign bit of index add not predicted (mask=%#x)", mask)
		}
		if mask&1 != 0 {
			t.Fatalf("lowest bit of index add predicted to crash (mask=%#x)", mask)
		}
		return
	}
	t.Fatal("no index-add def with crash bits found")
}

func TestParallelAnalyzeMatchesSerial(t *testing.T) {
	m, err := lang.Compile("t", arraySumSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(m, interp.Config{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	g := ddg.New(res.Trace)
	mask := g.ACEMask()
	serial := Analyze(res.Trace, g, mask, Config{})
	parallel := Analyze(res.Trace, g, mask, Config{Parallel: 8})
	if serial.AccessesAnalyzed != parallel.AccessesAnalyzed {
		t.Fatalf("accesses: %d vs %d", serial.AccessesAnalyzed, parallel.AccessesAnalyzed)
	}
	if serial.CrashBitCount != parallel.CrashBitCount ||
		serial.UseCrashBitCount != parallel.UseCrashBitCount {
		t.Fatalf("bit counts differ: %d/%d vs %d/%d",
			serial.CrashBitCount, serial.UseCrashBitCount,
			parallel.CrashBitCount, parallel.UseCrashBitCount)
	}
	if len(serial.CrashBits) != len(parallel.CrashBits) {
		t.Fatal("crash-bit maps differ in size")
	}
	for u, mseq := range serial.CrashBits {
		if parallel.CrashBits[u] != mseq {
			t.Fatalf("use %v: masks differ", u)
		}
	}
}
