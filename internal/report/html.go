package report

import (
	"fmt"
	"html/template"
	"io"
)

// HTMLDoc composes headings, paragraphs, tables and heatmaps into one
// self-contained HTML page (inline CSS, no external assets, stdlib
// html/template only) — the report artifact `campaign attr -html` writes.
type HTMLDoc struct {
	Title  string
	blocks []htmlBlock
}

// htmlBlock is one rendered section. Kind selects the template branch.
type htmlBlock struct {
	Kind    string // "heading", "para", "table", "heatmap", "pre"
	Text    string
	Table   *Table
	Heatmap *Heatmap
}

// NewHTMLDoc starts an empty document.
func NewHTMLDoc(title string) *HTMLDoc {
	return &HTMLDoc{Title: title}
}

// AddHeading appends a section heading.
func (d *HTMLDoc) AddHeading(text string) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "heading", Text: text})
}

// AddParagraph appends a paragraph of plain text (escaped).
func (d *HTMLDoc) AddParagraph(text string) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "para", Text: text})
}

// AddPre appends preformatted text (escaped, monospace).
func (d *HTMLDoc) AddPre(text string) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "pre", Text: text})
}

// AddTable appends a table.
func (d *HTMLDoc) AddTable(t *Table) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "table", Table: t})
}

// AddHeatmap appends a heatmap grid.
func (d *HTMLDoc) AddHeatmap(h *Heatmap) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "heatmap", Heatmap: h})
}

// Heatmap is a labelled grid of shaded cells (e.g. bit position x
// instruction misprediction density).
type Heatmap struct {
	Title string
	// Cols are the column headers, in order.
	Cols []string
	Rows []HeatmapRow
}

// HeatmapRow is one labelled heatmap row.
type HeatmapRow struct {
	Label string
	Cells []HeatmapCell
}

// HeatmapCell is one grid cell. Value in [0, 1] drives the shade; Filled
// distinguishes a zero-valued observation from no observation at all.
type HeatmapCell struct {
	Filled bool
	Value  float64
	// Text is the cell's hover tooltip.
	Text string
}

// Color returns the cell's CSS background color: a white-to-red ramp over
// Value for filled cells, near-white for empty ones.
func (c HeatmapCell) Color() template.CSS {
	if !c.Filled {
		return template.CSS("#fafafa")
	}
	v := c.Value
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	// Linear ramp #f7f7f7 -> #b2182b.
	lerp := func(a, b int) int { return a + int(v*float64(b-a)) }
	return template.CSS(fmt.Sprintf("#%02x%02x%02x",
		lerp(0xf7, 0xb2), lerp(0xf7, 0x18), lerp(0xf7, 0x2b)))
}

// htmlTmpl renders the whole document. html/template escaping keeps
// every text field safe; HeatmapCell.Color is template.CSS by
// construction (a hex literal).
var htmlTmpl = template.Must(template.New("doc").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 75em; padding: 0 1em; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.75em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f0f0f0; }
caption { caption-side: top; text-align: left; font-weight: 600; padding: 0.25em 0; }
.hm td { width: 1.1em; height: 1.1em; padding: 0; border: 1px solid #eee; }
.hm th { font-weight: 400; font-size: 0.75em; background: none; border: none; }
.hm td.lbl { width: auto; padding: 0 0.6em 0 0; border: none; white-space: nowrap; font-size: 0.85em; }
pre { background: #f7f7f7; padding: 0.75em; overflow-x: auto; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{range .Blocks}}{{if eq .Kind "heading"}}<h2>{{.Text}}</h2>
{{else if eq .Kind "para"}}<p>{{.Text}}</p>
{{else if eq .Kind "pre"}}<pre>{{.Text}}</pre>
{{else if eq .Kind "table"}}<table>
<caption>{{.Table.Title}}</caption>
<tr>{{range .Table.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Table.Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table>
{{else if eq .Kind "heatmap"}}<table class="hm">
<caption>{{.Heatmap.Title}}</caption>
<tr><th></th>{{range .Heatmap.Cols}}<th>{{.}}</th>{{end}}</tr>
{{range .Heatmap.Rows}}<tr><td class="lbl">{{.Label}}</td>{{range .Cells}}<td style="background:{{.Color}}" title="{{.Text}}"></td>{{end}}</tr>
{{end}}</table>
{{end}}{{end}}</body>
</html>
`))

// htmlData is the exported view the template executes over (the doc's
// block list is unexported).
type htmlData struct {
	Title  string
	Blocks []htmlBlock
}

// Render writes the document as a complete HTML page.
func (d *HTMLDoc) Render(w io.Writer) error {
	return htmlTmpl.Execute(w, htmlData{Title: d.Title, Blocks: d.blocks})
}
