package report

import (
	"fmt"
	"html/template"
	"io"
)

// HTMLDoc composes headings, paragraphs, tables and heatmaps into one
// self-contained HTML page (inline CSS, no external assets, stdlib
// html/template only) — the report artifact `campaign attr -html` writes.
type HTMLDoc struct {
	Title  string
	blocks []htmlBlock
}

// htmlBlock is one rendered section. Kind selects the template branch.
type htmlBlock struct {
	Kind     string // "heading", "para", "table", "heatmap", "pre", "timeline", "div", "script"
	Text     string
	Table    *Table
	Heatmap  *Heatmap
	Timeline *Timeline
	Script   template.JS
}

// NewHTMLDoc starts an empty document.
func NewHTMLDoc(title string) *HTMLDoc {
	return &HTMLDoc{Title: title}
}

// AddHeading appends a section heading.
func (d *HTMLDoc) AddHeading(text string) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "heading", Text: text})
}

// AddParagraph appends a paragraph of plain text (escaped).
func (d *HTMLDoc) AddParagraph(text string) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "para", Text: text})
}

// AddPre appends preformatted text (escaped, monospace).
func (d *HTMLDoc) AddPre(text string) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "pre", Text: text})
}

// AddTable appends a table.
func (d *HTMLDoc) AddTable(t *Table) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "table", Table: t})
}

// AddHeatmap appends a heatmap grid.
func (d *HTMLDoc) AddHeatmap(h *Heatmap) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "heatmap", Heatmap: h})
}

// AddTimeline appends a horizontal span chart.
func (d *HTMLDoc) AddTimeline(t *Timeline) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "timeline", Timeline: t})
}

// AddDiv appends an empty anchor <div id=...> for script-driven content
// (the live dashboard fills these from its event stream).
func (d *HTMLDoc) AddDiv(id string) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "div", Text: id})
}

// AddScript appends an inline <script> block. The script source is
// emitted verbatim (template.JS): callers pass trusted, compiled-in
// code only — never user input.
func (d *HTMLDoc) AddScript(js string) {
	d.blocks = append(d.blocks, htmlBlock{Kind: "script", Script: template.JS(js)})
}

// Timeline is a horizontal span chart: one labelled row per span, with a
// bar positioned by its start offset and width as fractions of the whole
// chart. `campaign trace -html` renders cross-process trace waterfalls
// with it.
type Timeline struct {
	Title string
	Rows  []TimelineRow
}

// TimelineRow is one bar on the chart. Left and Width are fractions of
// the chart width in [0, 1]; Proc tags the row and selects the bar color
// (rows sharing a Proc share a color).
type TimelineRow struct {
	Label string
	Proc  string
	Left  float64
	Width float64
	// Text is the row's hover tooltip.
	Text string
}

// timelinePalette cycles per distinct Proc value, assigned by first
// appearance so colors are stable for a given row order.
var timelinePalette = []string{
	"#4878cf", "#6acc65", "#d65f5f", "#b47cc7", "#c4ad66", "#77bedb",
	"#e39802", "#8c613c",
}

// procColors maps each distinct Proc to a palette entry by first
// appearance in the row list.
func (t *Timeline) procColors() map[string]string {
	m := map[string]string{}
	for _, r := range t.Rows {
		if _, ok := m[r.Proc]; !ok {
			m[r.Proc] = timelinePalette[len(m)%len(timelinePalette)]
		}
	}
	return m
}

// Bars is the template view: each row with its resolved CSS. Computed at
// render time so color assignment sees the full row list.
func (t *Timeline) Bars() []timelineBar {
	colors := t.procColors()
	out := make([]timelineBar, 0, len(t.Rows))
	for _, r := range t.Rows {
		left := clamp01(r.Left)
		width := clamp01(r.Width)
		if left+width > 1 {
			width = 1 - left
		}
		// Keep hairline spans visible.
		if width < 0.0035 {
			width = 0.0035
		}
		out = append(out, timelineBar{
			TimelineRow: r,
			Style: template.CSS(fmt.Sprintf("left:%.3f%%;width:%.3f%%;background:%s",
				left*100, width*100, colors[r.Proc])),
		})
	}
	return out
}

// timelineBar is one row plus its computed bar style.
type timelineBar struct {
	TimelineRow
	Style template.CSS
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Heatmap is a labelled grid of shaded cells (e.g. bit position x
// instruction misprediction density).
type Heatmap struct {
	Title string
	// Cols are the column headers, in order.
	Cols []string
	Rows []HeatmapRow
}

// HeatmapRow is one labelled heatmap row.
type HeatmapRow struct {
	Label string
	Cells []HeatmapCell
}

// HeatmapCell is one grid cell. Value in [0, 1] drives the shade; Filled
// distinguishes a zero-valued observation from no observation at all.
type HeatmapCell struct {
	Filled bool
	Value  float64
	// Text is the cell's hover tooltip.
	Text string
}

// Color returns the cell's CSS background color: a white-to-red ramp over
// Value for filled cells, near-white for empty ones.
func (c HeatmapCell) Color() template.CSS {
	if !c.Filled {
		return template.CSS("#fafafa")
	}
	v := c.Value
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	// Linear ramp #f7f7f7 -> #b2182b.
	lerp := func(a, b int) int { return a + int(v*float64(b-a)) }
	return template.CSS(fmt.Sprintf("#%02x%02x%02x",
		lerp(0xf7, 0xb2), lerp(0xf7, 0x18), lerp(0xf7, 0x2b)))
}

// htmlTmpl renders the whole document. html/template escaping keeps
// every text field safe; HeatmapCell.Color is template.CSS by
// construction (a hex literal).
var htmlTmpl = template.Must(template.New("doc").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 75em; padding: 0 1em; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.75em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f0f0f0; }
caption { caption-side: top; text-align: left; font-weight: 600; padding: 0.25em 0; }
.hm td { width: 1.1em; height: 1.1em; padding: 0; border: 1px solid #eee; }
.hm th { font-weight: 400; font-size: 0.75em; background: none; border: none; }
.hm td.lbl { width: auto; padding: 0 0.6em 0 0; border: none; white-space: nowrap; font-size: 0.85em; }
pre { background: #f7f7f7; padding: 0.75em; overflow-x: auto; }
.tl { margin: 0.75em 0; }
.tlcap { font-weight: 600; padding: 0.25em 0; }
.tlrow { display: flex; align-items: center; height: 1.35em; }
.tlrow:hover { background: #f0f4ff; }
.tllbl { width: 26em; overflow: hidden; white-space: pre; font: 12px/1.3 ui-monospace, monospace; flex: none; }
.tlproc { width: 9em; overflow: hidden; white-space: nowrap; font-size: 0.75em; color: #666; flex: none; }
.tltrack { position: relative; flex: 1; height: 0.8em; background: #f4f4f4; border-left: 1px solid #ddd; border-right: 1px solid #ddd; }
.tlbar { position: absolute; top: 0; height: 100%; border-radius: 2px; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{range .Blocks}}{{if eq .Kind "heading"}}<h2>{{.Text}}</h2>
{{else if eq .Kind "para"}}<p>{{.Text}}</p>
{{else if eq .Kind "pre"}}<pre>{{.Text}}</pre>
{{else if eq .Kind "table"}}<table>
<caption>{{.Table.Title}}</caption>
<tr>{{range .Table.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Table.Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table>
{{else if eq .Kind "heatmap"}}<table class="hm">
<caption>{{.Heatmap.Title}}</caption>
<tr><th></th>{{range .Heatmap.Cols}}<th>{{.}}</th>{{end}}</tr>
{{range .Heatmap.Rows}}<tr><td class="lbl">{{.Label}}</td>{{range .Cells}}<td style="background:{{.Color}}" title="{{.Text}}"></td>{{end}}</tr>
{{end}}</table>
{{else if eq .Kind "timeline"}}<div class="tl"><div class="tlcap">{{.Timeline.Title}}</div>
{{range .Timeline.Bars}}<div class="tlrow" title="{{.Text}}"><span class="tllbl">{{.Label}}</span><span class="tlproc">{{.Proc}}</span><span class="tltrack"><span class="tlbar" style="{{.Style}}"></span></span></div>
{{end}}</div>
{{else if eq .Kind "div"}}<div id="{{.Text}}"></div>
{{else if eq .Kind "script"}}<script>{{.Script}}</script>
{{end}}{{end}}</body>
</html>
`))

// htmlData is the exported view the template executes over (the doc's
// block list is unexported).
type htmlData struct {
	Title  string
	Blocks []htmlBlock
}

// Render writes the document as a complete HTML page.
func (d *HTMLDoc) Render(w io.Writer) error {
	return htmlTmpl.Execute(w, htmlData{Title: d.Title, Blocks: d.blocks})
}
