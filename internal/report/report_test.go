package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Demo", "Name", "Value")
	tbl.AddRow("short", 1)
	tbl.AddRow("much-longer-name", 123456)
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Error("missing title")
	}
	// Column starts align between header and rows.
	headerIdx := strings.Index(lines[2], "Value")
	rowIdx := strings.Index(lines[4], "1")
	if headerIdx != rowIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", headerIdx, rowIdx, s)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{0.125, "0.125"},
		{12.34, "12.3"},
		{4321, "4321"},
		{-2000, "-2000"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.v); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.125) != "12.5%" {
		t.Errorf("Percent = %q", Percent(0.125))
	}
}

func TestChartRendersBars(t *testing.T) {
	c := NewChart("Bars")
	c.Add(Series{Name: "a", Labels: []string{"x", "y"}, Values: []float64{1, 2}})
	c.Add(Series{Name: "b", Labels: []string{"x"}, Values: []float64{4}})
	s := c.String()
	if !strings.Contains(s, "Bars") || !strings.Contains(s, "####") {
		t.Errorf("chart rendering:\n%s", s)
	}
	// The max value gets the longest bar.
	var maxLine string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, " 4") && strings.Count(line, "#") > strings.Count(maxLine, "#") {
			maxLine = line
		}
	}
	if strings.Count(maxLine, "#") != 40 {
		t.Errorf("max bar not full width:\n%s", s)
	}
}

func TestChartEmptyValues(t *testing.T) {
	c := NewChart("Zero")
	c.Add(Series{Name: "z", Labels: []string{"l"}, Values: []float64{0}})
	if s := c.String(); !strings.Contains(s, "z") {
		t.Errorf("zero chart broken:\n%s", s)
	}
}
