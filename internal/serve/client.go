package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client talks to an analysis daemon. The zero HTTP client gets a
// generous default timeout (a cold analysis of a large module is slow;
// the point of the daemon is that it only ever happens once).
type Client struct {
	// Base is the daemon address: "host:port" or a full http:// URL.
	Base string
	// HTTP overrides the transport; nil uses a default with a 10-minute
	// timeout.
	HTTP *http.Client
	// Trace, when valid, is propagated on every request via the
	// Traceparent header, so daemon-side handling spans become children
	// of the caller's span.
	Trace obs.SpanContext
	// Tracer, when non-nil, ingests the daemon's returned spans (the
	// analyze reply's spans field, the X-Epvf-Span blob header) into the
	// local trace. Nil drops them.
	Tracer *obs.Tracer
}

// NewClient builds a client for a daemon address.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Minute}
}

func (c *Client) url(path string) string {
	base := c.Base
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimSuffix(base, "/") + path
}

// newRequest builds a request with the client's trace context injected.
func (c *Client) newRequest(method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if c.Trace.Valid() {
		obs.InjectTraceHeader(req.Header, c.Trace)
	}
	return req, nil
}

// ingestHeaderSpan decodes the X-Epvf-Span response header (when
// present) into the client's tracer.
func (c *Client) ingestHeaderSpan(resp *http.Response) {
	raw := resp.Header.Get(SpanHeader)
	if raw == "" || c.Tracer == nil {
		return
	}
	var rec obs.SpanRecord
	if err := json.Unmarshal([]byte(raw), &rec); err == nil {
		c.Tracer.Ingest(rec)
	}
}

// Analyze submits module IR and returns the daemon's (possibly cached)
// analysis. Daemon handling spans in the reply are ingested into the
// client's tracer (when one is set) and left in the reply for callers
// that persist them elsewhere (campaign logs).
func (c *Client) Analyze(irText string) (*AnalyzeReply, error) {
	body, err := json.Marshal(AnalyzeRequest{IR: irText})
	if err != nil {
		return nil, err
	}
	req, err := c.newRequest(http.MethodPost, c.url("/v1/analyze"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: analyze: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serve: analyze: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var reply AnalyzeReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("serve: analyze: decode reply: %w", err)
	}
	if reply.Summary == nil {
		return nil, fmt.Errorf("serve: analyze: reply has no summary")
	}
	if c.Tracer != nil && len(reply.Spans) > 0 {
		c.Tracer.Ingest(reply.Spans...)
	}
	return &reply, nil
}

// blobPath maps a cache kind to its endpoint path.
func blobPath(kind string) string {
	switch kind {
	case KindCampaign:
		return "/v1/campaign/log"
	case KindAttr:
		return "/v1/attr/snapshot"
	default:
		return "/v1/" + kind
	}
}

// GetBlob fetches a cached artifact by (kind, plan hash). ok=false
// means the daemon has no entry (a miss, not an error).
func (c *Client) GetBlob(kind, plan string) (data []byte, ok bool, err error) {
	u := c.url(blobPath(kind)) + "?plan=" + url.QueryEscape(plan)
	req, err := c.newRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("serve: get %s: %w", kind, err)
	}
	defer resp.Body.Close()
	c.ingestHeaderSpan(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, fmt.Errorf("serve: get %s: %w", kind, err)
		}
		return data, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("serve: get %s: %s: %s", kind, resp.Status, strings.TrimSpace(string(msg)))
	}
}

// PutBlob uploads an artifact under (kind, plan hash).
func (c *Client) PutBlob(kind, plan string, data []byte) error {
	u := c.url(blobPath(kind)) + "?plan=" + url.QueryEscape(plan)
	req, err := c.newRequest(http.MethodPut, u, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("serve: put %s: %w", kind, err)
	}
	defer resp.Body.Close()
	c.ingestHeaderSpan(resp)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("serve: put %s: %s: %s", kind, resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Healthz fetches the daemon's /healthz document.
func (c *Client) Healthz() (map[string]any, error) {
	resp, err := c.httpClient().Get(c.url("/healthz"))
	if err != nil {
		return nil, fmt.Errorf("serve: healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: healthz: %s", resp.Status)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc, nil
}
