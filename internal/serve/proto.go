package serve

import "repro/internal/obs"

// Wire types of the /v1/analyze endpoint. The request carries the
// module as textual IR — the canonical program representation every
// layer of the pipeline already hashes — and the reply carries the
// cacheable Summary plus provenance: which pipeline stage satisfied
// the request and under what content address.

// SpanHeader is the response header blob endpoints return their
// handling span in (one JSON-encoded obs.SpanRecord): those responses
// are opaque byte streams, so the span travels out of band. The analyze
// endpoint returns spans in the JSON reply instead.
const SpanHeader = "X-Epvf-Span"

// StageHeader is the response header the analyze endpoint reports its
// serving stage in — on every reply, success or error, so callers (and
// curl users) can read the tier without parsing the body. Errors that
// never resolved a stage report StageUnresolved.
const StageHeader = "X-Epvf-Stage"

// AnalyzeRequest asks the daemon for the ePVF analysis of one module.
type AnalyzeRequest struct {
	// IR is the textual IR of the module (ir.Print output, or anything
	// ir.Parse accepts — the daemon reprints the parsed module before
	// hashing, so formatting differences cannot split the cache).
	IR string `json:"ir"`
}

// Analysis stages a reply can be served from, cheapest first.
const (
	// StageSummary: the summary cache held the final result.
	StageSummary = "summary-cache"
	// StageIncremental: the incremental tier composed the answer with at
	// least one per-function section profile reused from the cache
	// (Config.Incremental; internal/inc).
	StageIncremental = "incremental"
	// StageTrace: the golden trace was cached; only the ACE/crash/
	// propagation models re-ran.
	StageTrace = "trace-cache"
	// StageComputed: full profile + analysis ran.
	StageComputed = "computed"
	// StageUnresolved marks error replies that failed before any tier
	// could answer (bad request, analysis error).
	StageUnresolved = "unresolved"
)

// SectionStats reports the incremental tier's per-section accounting for
// the request that computed the reply (absent on summary-cache hits —
// no sections were consulted).
type SectionStats struct {
	// Total, Reused and Recomputed count the module's sections and how
	// many were served from the section cache vs freshly walked.
	Total      int `json:"total"`
	Reused     int `json:"reused"`
	Recomputed int `json:"recomputed"`
	// RecomputedNames lists the sections that re-analyzed, in trace
	// order — after a single-function edit this is the one changed
	// function.
	RecomputedNames []string `json:"recomputed_names,omitempty"`
}

// AnalyzeReply is the daemon's answer.
type AnalyzeReply struct {
	// ModuleHash is the content address the result is cached under.
	ModuleHash string `json:"module_hash"`
	// Stage reports which pipeline stage satisfied the request.
	Stage string `json:"stage"`
	// CacheHit is true unless a full profile + analysis ran.
	CacheHit bool `json:"cache_hit"`
	// Summary is the analysis result.
	Summary *Summary `json:"summary"`
	// Sections is the incremental tier's section breakdown, when that
	// tier computed this reply.
	Sections *SectionStats `json:"sections,omitempty"`
	// Spans are the daemon's handling spans for this request. When the
	// request carried a Traceparent header they are children of the
	// caller's span, so ingesting them stitches the daemon's work into
	// the caller's own trace.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}
