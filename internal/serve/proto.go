package serve

// Wire types of the /v1/analyze endpoint. The request carries the
// module as textual IR — the canonical program representation every
// layer of the pipeline already hashes — and the reply carries the
// cacheable Summary plus provenance: which pipeline stage satisfied
// the request and under what content address.

// AnalyzeRequest asks the daemon for the ePVF analysis of one module.
type AnalyzeRequest struct {
	// IR is the textual IR of the module (ir.Print output, or anything
	// ir.Parse accepts — the daemon reprints the parsed module before
	// hashing, so formatting differences cannot split the cache).
	IR string `json:"ir"`
}

// Analysis stages a reply can be served from, cheapest first.
const (
	// StageSummary: the summary cache held the final result.
	StageSummary = "summary-cache"
	// StageTrace: the golden trace was cached; only the ACE/crash/
	// propagation models re-ran.
	StageTrace = "trace-cache"
	// StageComputed: full profile + analysis ran.
	StageComputed = "computed"
)

// AnalyzeReply is the daemon's answer.
type AnalyzeReply struct {
	// ModuleHash is the content address the result is cached under.
	ModuleHash string `json:"module_hash"`
	// Stage reports which pipeline stage satisfied the request.
	Stage string `json:"stage"`
	// CacheHit is true unless a full profile + analysis ran.
	CacheHit bool `json:"cache_hit"`
	// Summary is the analysis result.
	Summary *Summary `json:"summary"`
}
