package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/epvf"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/obs"
)

// startDaemon runs a daemon on a free port with a disk cache in dir.
func startDaemon(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := New(Config{Addr: "127.0.0.1:0", CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func benchIR(t *testing.T, name string) string {
	t.Helper()
	b, ok := bench.Get(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return ir.Print(b.MustModule(1))
}

func TestAnalyzeStages(t *testing.T) {
	dir := t.TempDir()
	s := startDaemon(t, dir)
	c := NewClient(s.Addr())
	irText := benchIR(t, "mm")

	cold, err := c.Analyze(irText)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stage != StageComputed || cold.CacheHit {
		t.Fatalf("cold request: stage=%s hit=%v, want computed miss", cold.Stage, cold.CacheHit)
	}
	if cold.Summary.TotalBits == 0 || cold.Summary.Module != "mm" {
		t.Fatalf("implausible summary: %+v", cold.Summary)
	}

	warm, err := c.Analyze(irText)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stage != StageSummary || !warm.CacheHit {
		t.Fatalf("warm request: stage=%s hit=%v, want summary-cache hit", warm.Stage, warm.CacheHit)
	}
	if warm.ModuleHash != cold.ModuleHash {
		t.Fatalf("module hash changed: %s vs %s", warm.ModuleHash, cold.ModuleHash)
	}

	// Restart: a fresh daemon over the same directory serves the
	// summary from the disk tier without recomputing.
	s2 := startDaemon(t, dir)
	restart, err := NewClient(s2.Addr()).Analyze(irText)
	if err != nil {
		t.Fatal(err)
	}
	if restart.Stage != StageSummary {
		t.Fatalf("post-restart stage = %s, want summary-cache", restart.Stage)
	}

	// Dropping only the summary entry forces the trace stage: the
	// cached golden trace is re-analyzed, no re-profiling.
	sumPath := filepath.Join(dir, "epvf-cache-v1", KindSummary, cold.ModuleHash)
	if err := os.Remove(sumPath); err != nil {
		t.Fatalf("remove summary entry: %v", err)
	}
	s3 := startDaemon(t, dir)
	fromTrace, err := NewClient(s3.Addr()).Analyze(irText)
	if err != nil {
		t.Fatal(err)
	}
	if fromTrace.Stage != StageTrace {
		t.Fatalf("stage after summary eviction = %s, want trace-cache", fromTrace.Stage)
	}
	if got, want := summaryScalars(fromTrace.Summary), summaryScalars(cold.Summary); !reflect.DeepEqual(got, want) {
		t.Fatalf("trace-stage scalars diverge:\n cold %+v\ntrace %+v", want, got)
	}
}

// summaryScalars strips slices (and the timing floats, which genuinely
// differ between runs) so summaries compare with ==.
func summaryScalars(s *Summary) Summary {
	cp := *s
	cp.PerFunc, cp.PerInstr = nil, nil
	cp.GraphBuildSeconds, cp.ModelsSeconds = 0, 0
	return cp
}

// TestCachedRenderByteIdentical is the acceptance check: for every
// Table-IV kernel, the daemon's cold reply, its warm cached reply, and
// a fresh local analysis must render byte-identical reports (timing
// rows excluded — they measure different runs by definition).
func TestCachedRenderByteIdentical(t *testing.T) {
	s := startDaemon(t, t.TempDir())
	c := NewClient(s.Addr())
	opts := RenderOptions{Classes: true, PerFunc: true, PerInstr: 10}
	for _, b := range bench.Paper10() {
		m := b.MustModule(1)
		a, golden, err := epvf.AnalyzeModule(m, epvf.Config{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		local := Summarize(m.Name, a, golden.DynInstrs).Render(opts)

		cold, err := c.Analyze(ir.Print(m))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		warm, err := c.Analyze(ir.Print(m))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if got := cold.Summary.Render(opts); got != local {
			t.Errorf("%s: cold daemon render differs from local:\n--- local ---\n%s\n--- daemon ---\n%s", b.Name, local, got)
		}
		if got := warm.Summary.Render(opts); got != local {
			t.Errorf("%s: cached daemon render differs from local:\n--- local ---\n%s\n--- daemon ---\n%s", b.Name, local, got)
		}
		if warm.Stage != StageSummary {
			t.Errorf("%s: warm stage = %s", b.Name, warm.Stage)
		}
	}
}

func TestAnalyzeSingleflight(t *testing.T) {
	s := startDaemon(t, t.TempDir())
	c := NewClient(s.Addr())
	irText := benchIR(t, "bfs")
	const n = 8
	replies := make([]*AnalyzeReply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Analyze(irText)
			if err != nil {
				t.Error(err)
				return
			}
			replies[i] = r
		}(i)
	}
	wg.Wait()
	computed := 0
	for _, r := range replies {
		if r == nil {
			t.Fatal("missing reply")
		}
		if r.Stage == StageComputed {
			computed++
		}
	}
	// The cache singleflights concurrent fills: at most one request may
	// have run the full analysis.
	if computed > 1 {
		t.Fatalf("%d concurrent requests ran the full analysis, want <= 1", computed)
	}
	st := s.Store().Stats()
	if st.Fills != 1 {
		t.Fatalf("store fills = %d, want 1", st.Fills)
	}
}

func TestAnalyzeBadRequests(t *testing.T) {
	s := startDaemon(t, t.TempDir())
	c := NewClient(s.Addr())
	if _, err := c.Analyze("this is not IR"); err == nil {
		t.Error("malformed IR accepted")
	}
	if _, err := c.Analyze(""); err == nil {
		t.Error("empty IR accepted")
	}
}

func TestBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := startDaemon(t, dir)
	c := NewClient(s.Addr())
	for _, kind := range []string{KindCampaign, KindAttr} {
		payload := []byte("payload for " + kind)
		if _, ok, err := c.GetBlob(kind, "abcd1234"); err != nil || ok {
			t.Fatalf("%s: empty GetBlob = ok=%v err=%v, want miss", kind, ok, err)
		}
		if err := c.PutBlob(kind, "abcd1234", payload); err != nil {
			t.Fatalf("%s: PutBlob: %v", kind, err)
		}
		got, ok, err := c.GetBlob(kind, "abcd1234")
		if err != nil || !ok || !bytes.Equal(got, payload) {
			t.Fatalf("%s: GetBlob = %q, %v, %v", kind, got, ok, err)
		}
	}
	// A bad plan key is rejected, not stored.
	if err := c.PutBlob(KindCampaign, "../escape", []byte("x")); err == nil {
		t.Error("path-escaping plan key accepted")
	}

	// Blobs survive a daemon restart via the disk tier.
	s2 := startDaemon(t, dir)
	got, ok, err := NewClient(s2.Addr()).GetBlob(KindCampaign, "abcd1234")
	if err != nil || !ok || string(got) != "payload for campaign" {
		t.Fatalf("post-restart GetBlob = %q, %v, %v", got, ok, err)
	}
}

func TestHealthzCacheSection(t *testing.T) {
	s := startDaemon(t, t.TempDir())
	c := NewClient(s.Addr())
	if err := c.PutBlob(KindCampaign, "aa11", []byte("x")); err != nil {
		t.Fatal(err)
	}
	doc, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" {
		t.Errorf("status = %v", doc["status"])
	}
	sect, ok := doc["cache"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no cache section: %v", doc)
	}
	if n, _ := sect["mem_entries"].(float64); n != 1 {
		t.Errorf("cache.mem_entries = %v, want 1", sect["mem_entries"])
	}
}

func TestGracefulShutdown(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	c := NewClient(s.Addr())
	if err := c.PutBlob(KindAttr, "ff00", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, _, err := c.GetBlob(KindAttr, "ff00"); err == nil {
		t.Error("request succeeded after shutdown")
	}
}

func TestMetricsCountStages(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())
	c := NewClient(s.Addr())
	irText := benchIR(t, "bfs")
	for i := 0; i < 3; i++ {
		if _, err := c.Analyze(irText); err != nil {
			t.Fatal(err)
		}
	}
	if v := reg.Counter("epvf_serve_requests_total", "endpoint", "analyze", "outcome", StageComputed).Value(); v != 1 {
		t.Errorf("computed count = %d, want 1", v)
	}
	if v := reg.Counter("epvf_serve_requests_total", "endpoint", "analyze", "outcome", StageSummary).Value(); v != 2 {
		t.Errorf("summary-cache count = %d, want 2", v)
	}
}

// rawAnalyze posts a raw body to /v1/analyze so the test can inspect
// response headers the Client abstracts away.
func rawAnalyze(t *testing.T, addr, body string) *http.Response {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStageHeaderAllTiers: every analyze reply carries X-Epvf-Stage,
// and it names the tier that actually served the request.
func TestStageHeaderAllTiers(t *testing.T) {
	s := startDaemon(t, t.TempDir())
	body, err := json.Marshal(AnalyzeRequest{IR: benchIR(t, "mm")})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{StageComputed, StageSummary} {
		resp := rawAnalyze(t, s.Addr(), string(body))
		got := resp.Header.Get(StageHeader)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, resp.StatusCode)
		}
		if got != want {
			t.Fatalf("request %d: %s = %q, want %q", i, StageHeader, got, want)
		}
	}
}

// TestBadRequestStageHeader: error replies carry the stage header too,
// reporting unresolved — a truncated IR body (cut mid-module) and a
// truncated JSON envelope both come back 400, never a silent hang or
// an unheadered error.
func TestBadRequestStageHeader(t *testing.T) {
	s := startDaemon(t, t.TempDir())
	full := benchIR(t, "mm")
	truncatedIR, err := json.Marshal(AnalyzeRequest{IR: full[:len(full)/2]})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, body string
	}{
		{"truncated IR text", string(truncatedIR)},
		{"truncated JSON body", `{"ir": "define`},
		{"empty IR", `{"ir": ""}`},
	}
	for _, tc := range cases {
		resp := rawAnalyze(t, s.Addr(), tc.body)
		got := resp.Header.Get(StageHeader)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if got != StageUnresolved {
			t.Errorf("%s: %s = %q, want %q", tc.name, StageHeader, got, StageUnresolved)
		}
	}
}

// servedIsolated is a module of mutually isolated functions (private
// arrays, own outputs) so a one-function edit perturbs exactly one
// section. Mirrors the internal/inc fixture.
const servedIsolated = `
void f() {
  int a[8];
  int i = 0;
  while (i < 48) { a[i % 8] = i * 3 + 1; i = i + 1; }
  int j = 0;
  while (j < 8) { output(a[j]); j = j + 1; }
}
void g() {
  int b[6];
  int i = 0;
  while (i < 36) { b[i % 6] = i * 5 + 2; i = i + 1; }
  int j = 0;
  while (j < 6) { output(b[j]); j = j + 1; }
}
int main() {
  f();
  g();
  return 0;
}
`

// TestIncrementalDaemon is the daemon-side acceptance check: with the
// incremental tier enabled, analyzing a module after a single-function
// edit recomputes only that function's section — proven by the reply's
// stage tier, its section stats, and the epvf_inc_sections_recomputed
// metric moving by exactly one.
func TestIncrementalDaemon(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{Addr: "127.0.0.1:0", CacheDir: t.TempDir(), Incremental: true, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	c := NewClient(s.Addr())

	m, err := lang.Compile("prog", servedIsolated)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := c.Analyze(ir.Print(m))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stage != StageComputed {
		t.Fatalf("cold stage = %s, want computed", cold.Stage)
	}
	if cold.Sections == nil || cold.Sections.Reused != 0 || cold.Sections.Recomputed != cold.Sections.Total {
		t.Fatalf("cold sections = %+v, want all recomputed", cold.Sections)
	}

	warm, err := c.Analyze(ir.Print(m))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stage != StageSummary || warm.Sections != nil {
		t.Fatalf("warm reply: stage=%s sections=%+v, want summary-cache with no sections", warm.Stage, warm.Sections)
	}

	recomputedBefore := reg.Counter("epvf_inc_sections_recomputed_total").Value()

	edited := strings.Replace(servedIsolated, "i * 3 + 1", "i * 3 + 2", 1)
	m2, err := lang.Compile("prog", edited)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := c.Analyze(ir.Print(m2))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Stage != StageIncremental || !reply.CacheHit {
		t.Fatalf("edited reply: stage=%s hit=%v, want incremental hit", reply.Stage, reply.CacheHit)
	}
	if reply.Sections == nil {
		t.Fatal("edited reply has no section stats")
	}
	if reply.Sections.Recomputed != 1 || len(reply.Sections.RecomputedNames) != 1 || reply.Sections.RecomputedNames[0] != "f" {
		t.Fatalf("edited sections = %+v, want exactly [f] recomputed", reply.Sections)
	}
	if reply.Sections.Reused != reply.Sections.Total-1 {
		t.Fatalf("edited sections = %+v, want all but one reused", reply.Sections)
	}
	if d := reg.Counter("epvf_inc_sections_recomputed_total").Value() - recomputedBefore; d != 1 {
		t.Fatalf("epvf_inc_sections_recomputed_total moved by %d, want 1", d)
	}

	// Composed result must match a from-scratch local analysis exactly.
	a, golden, err := epvf.AnalyzeModule(m2, epvf.Config{})
	if err != nil {
		t.Fatal(err)
	}
	local := Summarize(m2.Name, a, golden.DynInstrs)
	if got, want := summaryScalars(reply.Summary), summaryScalars(local); !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental daemon summary diverges from local:\nlocal  %+v\ndaemon %+v", want, got)
	}
}
