package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/content"
	"repro/internal/dashboard"
	"repro/internal/epvf"
	"repro/internal/inc"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vm"
)

// moduleTag is the domain tag of the analysis content address: the
// sha256 of the module's canonical IR print under this tag keys both
// the summary and the golden-trace cache entries.
const moduleTag = "epvf-analysis-v1"

// Cache kinds the daemon stores results under.
const (
	KindSummary  = "summary"
	KindTrace    = "trace"
	KindCampaign = "campaign"
	KindAttr     = "attr"
)

// ModuleHash returns the content address of a module: the hash of its
// canonical IR print. Clients and daemon agree on this key because both
// reprint the parsed module before hashing.
func ModuleHash(m *ir.Module) string {
	return content.Hash(moduleTag, []byte(ir.Print(m)))
}

// Config describes a daemon.
type Config struct {
	// Addr is the listen address (host:port; :0 picks a free port).
	Addr string
	// CacheDir is the disk spill tier's directory; empty keeps results
	// in memory only (they die with the process).
	CacheDir string
	// CacheMemBytes bounds the memory tier; zero means the cache
	// default.
	CacheMemBytes int64
	// Registry receives the epvf_serve_* and epvf_cache_* metrics; nil
	// creates a private one.
	Registry *obs.Registry
	// Tracer, when non-nil, records a handling span per request and
	// returns it to the caller (in the analyze reply, or the X-Epvf-Span
	// header for blob endpoints) so clients can stitch the daemon's work
	// into their own traces. Long-lived daemons should SetRetain on it.
	Tracer *obs.Tracer
	// Incremental enables the incremental analysis tier: below the
	// summary cache, analyses compose from per-function section profiles
	// (internal/inc) stored in the same cache, so an edit to one
	// function re-walks only that function's section.
	Incremental bool
}

// Server is the analysis daemon: one obs.Server carrying /metrics,
// /healthz, pprof and the /v1 analysis endpoints, backed by one
// content-addressed store.
type Server struct {
	reg         *obs.Registry
	obs         *obs.Server
	store       *cache.Store
	tracer      *obs.Tracer
	incremental bool
	dash        *dashboard.Mounted
}

// New binds the address and prepares the cache, but does not serve
// until Start.
func New(cfg Config) (*Server, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	store, err := cache.Open(cache.Config{
		Dir:      cfg.CacheDir,
		MemBytes: cfg.CacheMemBytes,
		Registry: reg,
	})
	if err != nil {
		return nil, err
	}
	osrv, err := obs.NewServer(cfg.Addr, reg)
	if err != nil {
		return nil, err
	}
	// Compiled VM bytecode (vm-code-v1 entries) shares the daemon's
	// store, so repeated analyses of the same module skip recompilation.
	vm.SetDefaultCache(store)
	s := &Server{reg: reg, obs: osrv, store: store, tracer: cfg.Tracer, incremental: cfg.Incremental}
	osrv.Handle("/v1/analyze", http.HandlerFunc(s.handleAnalyze))
	osrv.Handle("/v1/campaign/log", s.blobHandler(KindCampaign))
	osrv.Handle("/v1/attr/snapshot", s.blobHandler(KindAttr))
	osrv.AddHealth("cache", func() any { return store.Stats() })
	// The live telemetry layer — /ts, /events, /alerts, /dashboard —
	// rides the same listener; alert firings capture pprof bundles into
	// the daemon's own store (kind obs-profile-v1).
	s.dash = dashboard.Mount(osrv, dashboard.Config{
		Registry: reg,
		Title:    "epvf analysis daemon",
		Profiles: store,
	})
	return s, nil
}

// Obs exposes the underlying observability server so callers can mount
// additional handlers (the campaign coordinator, /attr views) on the
// same listener.
func (s *Server) Obs() *obs.Server { return s.obs }

// Store exposes the daemon's result store (the experiments suite and
// tests put campaign logs in directly).
func (s *Server) Store() *cache.Store { return s.store }

// Addr returns the bound address.
func (s *Server) Addr() string { return s.obs.Addr() }

// Start serves in a background goroutine until Shutdown.
func (s *Server) Start() { s.obs.Start() }

// Shutdown drains gracefully: in-flight analyses finish (their results
// land in the disk tier for the next process) before the listener
// closes, or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.dash.Stop()
	return s.obs.Shutdown(ctx)
}

func (s *Server) countRequest(endpoint, outcome string) {
	s.reg.Counter("epvf_serve_requests_total", "endpoint", endpoint, "outcome", outcome).Inc()
}

// observeStage records one request's end-to-end latency into the
// per-cache-stage histogram: which tier answered (summary-cache,
// trace-cache, computed, or a blob kind) and how the request ended.
func (s *Server) observeStage(stage, outcome string, start time.Time) {
	s.reg.Histogram("epvf_cache_stage_latency_seconds", obs.LatencyBuckets,
		"stage", stage, "outcome", outcome).Observe(time.Since(start).Seconds())
}

// startSpan opens a handling span for one request, parented under the
// caller's span when the request carries a Traceparent header — the
// cross-process edge that stitches daemon work into client traces. Nil
// when the daemon runs without a tracer.
func (s *Server) startSpan(name string, req *http.Request) *obs.Span {
	if s.tracer == nil {
		return nil
	}
	if pctx, ok := obs.ExtractTraceHeader(req.Header); ok {
		return s.tracer.StartRemote(name, pctx)
	}
	return s.tracer.Start(name)
}

// spanHeader ends sp and stamps its JSON-encoded record on the response
// headers (blob endpoints; the analyze endpoint embeds spans in its
// JSON reply instead).
func spanHeader(w http.ResponseWriter, sp *obs.Span) {
	if sp == nil {
		return
	}
	if b, err := json.Marshal(sp.EndRecord()); err == nil {
		w.Header().Set(SpanHeader, string(b))
	}
}

// handleAnalyze is POST /v1/analyze: parse the module, address it by
// content, and satisfy the request from the cheapest available stage —
// cached summary, cached golden trace (models re-run), or a full
// profile + analysis. Concurrent requests for the same module share one
// computation via the store's singleflight.
func (s *Server) handleAnalyze(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	t0 := time.Now()
	sp := s.startSpan("analyze", req)
	var areq AnalyzeRequest
	if err := json.NewDecoder(req.Body).Decode(&areq); err != nil {
		sp.End()
		s.countRequest("analyze", "bad_request")
		s.observeStage(StageUnresolved, "bad_request", t0)
		w.Header().Set(StageHeader, StageUnresolved)
		http.Error(w, fmt.Sprintf("decode request: %v", err), http.StatusBadRequest)
		return
	}
	m, err := ir.Parse(areq.IR)
	if err == nil && len(m.Funcs) == 0 {
		err = fmt.Errorf("empty module")
	}
	if err != nil {
		sp.End()
		s.countRequest("analyze", "bad_request")
		s.observeStage(StageUnresolved, "bad_request", t0)
		w.Header().Set(StageHeader, StageUnresolved)
		http.Error(w, fmt.Sprintf("parse IR: %v", err), http.StatusBadRequest)
		return
	}
	modHash := ModuleHash(m)

	// stage is set by this request's fill closure; when another
	// goroutine's flight (or the cache itself) supplied the bytes, it
	// stays empty and the result counts as a summary-cache hit.
	stage := ""
	var sections *SectionStats
	data, hit, err := s.store.GetOrFill(KindSummary, modHash, func() ([]byte, error) {
		sum, st, secs, err := s.analyze(m, modHash)
		if err != nil {
			return nil, err
		}
		stage, sections = st, secs
		return json.Marshal(sum)
	})
	if err != nil {
		sp.End()
		s.countRequest("analyze", "error")
		s.observeStage(StageUnresolved, "error", t0)
		w.Header().Set(StageHeader, StageUnresolved)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if hit || stage == "" {
		stage, sections = StageSummary, nil
	}
	var sum Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		sp.End()
		s.countRequest("analyze", "error")
		s.observeStage(stage, "error", t0)
		w.Header().Set(StageHeader, stage)
		http.Error(w, fmt.Sprintf("decode cached summary: %v", err), http.StatusInternalServerError)
		return
	}
	s.countRequest("analyze", stage)
	s.observeStage(stage, "ok", t0)
	reply := AnalyzeReply{
		ModuleHash: modHash,
		Stage:      stage,
		CacheHit:   stage != StageComputed,
		Summary:    &sum,
		Sections:   sections,
	}
	if sp != nil {
		sp.Add("cache_hit", boolCounter(reply.CacheHit))
		reply.Spans = []obs.SpanRecord{sp.EndRecord()}
	}
	w.Header().Set(StageHeader, stage)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

func boolCounter(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// analyze computes a summary from the cheapest stage below the summary
// cache. With the incremental tier enabled, the module is re-profiled
// (from the cached golden trace when available) and the models compose
// from per-function section profiles — after an edit to one function,
// only that function's walks re-run. Otherwise: a cached golden trace if
// present (only the models re-run), else a full profiled analysis whose
// trace is written back for next time.
func (s *Server) analyze(m *ir.Module, modHash string) (*Summary, string, *SectionStats, error) {
	if raw, ok := s.store.Get(KindTrace, modHash); ok {
		tr, err := trace.Load(bytes.NewReader(raw), m)
		if err == nil {
			if s.incremental {
				return s.analyzeIncremental(m, tr, StageTrace)
			}
			a := epvf.AnalyzeTrace(tr, epvf.Config{})
			return Summarize(m.Name, a, tr.NumEvents()), StageTrace, nil, nil
		}
		// A trace that fails to decode against its own module is a
		// corrupt entry the framing checks missed; fall through to a
		// full run that overwrites it.
	}
	if s.incremental {
		icfg := epvf.Config{}
		icfg.Interp.Record = true
		res, err := interp.Run(m, icfg.Interp)
		if err != nil {
			return nil, "", nil, err
		}
		s.saveTrace(res.Trace, modHash)
		return s.analyzeIncremental(m, res.Trace, StageComputed)
	}
	a, golden, err := epvf.AnalyzeModule(m, epvf.Config{})
	if err != nil {
		return nil, "", nil, err
	}
	s.saveTrace(a.Trace, modHash)
	return Summarize(m.Name, a, golden.DynInstrs), StageComputed, nil, nil
}

// analyzeIncremental composes the analysis from cached + fresh section
// profiles. The stage reports StageIncremental when any section was
// reused; otherwise fallbackStage tells the truth about where the work
// happened (trace-cache when the trace was reused, computed for a cold
// module).
func (s *Server) analyzeIncremental(m *ir.Module, tr *trace.Trace, fallbackStage string) (*Summary, string, *SectionStats, error) {
	r, err := inc.AnalyzeTrace(tr, inc.Config{Store: s.store, Registry: s.reg})
	if err != nil {
		return nil, "", nil, err
	}
	stage := fallbackStage
	if r.Stats.Reused > 0 {
		stage = StageIncremental
	}
	secs := &SectionStats{
		Total:           len(r.Stats.Sections),
		Reused:          r.Stats.Reused,
		Recomputed:      r.Stats.Recomputed,
		RecomputedNames: r.Stats.RecomputedNames(),
	}
	return Summarize(m.Name, r.Analysis, r.DynInstrs), stage, secs, nil
}

// saveTrace writes the golden trace back for the next analysis of the
// same module (best effort — a failed save only costs future speed).
func (s *Server) saveTrace(tr *trace.Trace, modHash string) {
	var buf bytes.Buffer
	if err := tr.Save(&buf); err == nil {
		s.store.Put(KindTrace, modHash, buf.Bytes())
	}
}

// blobHandler serves GET/PUT of opaque byte artifacts (campaign logs,
// attribution snapshots) keyed by ?plan=<content hash>.
func (s *Server) blobHandler(kind string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		plan := req.URL.Query().Get("plan")
		if plan == "" {
			s.countRequest(kind, "bad_request")
			http.Error(w, "missing ?plan=<hash>", http.StatusBadRequest)
			return
		}
		t0 := time.Now()
		switch req.Method {
		case http.MethodGet:
			sp := s.startSpan("get "+kind, req)
			data, ok := s.store.Get(kind, plan)
			if !ok {
				sp.End()
				s.countRequest(kind, "miss")
				s.observeStage(kind, "miss", t0)
				http.Error(w, fmt.Sprintf("no cached %s for plan %s", kind, plan), http.StatusNotFound)
				return
			}
			s.countRequest(kind, "hit")
			s.observeStage(kind, "hit", t0)
			spanHeader(w, sp)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.Write(data)
		case http.MethodPut, http.MethodPost:
			sp := s.startSpan("put "+kind, req)
			data, err := io.ReadAll(req.Body)
			if err != nil {
				sp.End()
				s.countRequest(kind, "error")
				s.observeStage(kind, "error", t0)
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := s.store.Put(kind, plan, data); err != nil {
				sp.End()
				s.countRequest(kind, "bad_request")
				s.observeStage(kind, "bad_request", t0)
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			s.countRequest(kind, "put")
			s.observeStage(kind, "put", t0)
			spanHeader(w, sp)
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "GET or PUT only", http.StatusMethodNotAllowed)
		}
	})
}
