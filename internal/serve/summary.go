// Package serve is the always-on analysis service: a long-lived daemon
// that accepts module IR over HTTP, keys every stage of the ePVF
// pipeline by content hash, and serves cached results — analysis
// summaries, golden traces, campaign logs, attribution snapshots —
// from a two-tier internal/cache store. A Client gives the CLIs
// (cmd/epvf, cmd/campaign) the same answers a local run would compute,
// byte-identical, because both sides render through the Summary type
// defined here.
package serve

import (
	"fmt"
	"sort"

	"repro/internal/epvf"
	"repro/internal/report"
)

// Summary is the cacheable result of one ePVF analysis. It stores the
// raw integer numerators and denominators (never pre-divided floats),
// so every derived metric — PVF, ePVF, crash rate — is recomputed with
// the exact float operations internal/epvf uses. That makes rendering
// deterministic: a daemon-served summary and a fresh local analysis
// print byte-identical reports.
type Summary struct {
	// Module is the module name printed in the report title.
	Module string `json:"module"`
	// DynInstrs is the dynamic IR instruction count of the golden run.
	DynInstrs int64 `json:"dyn_instrs"`
	// RegisterDefs and MemAccesses are the DDG node-class tallies.
	RegisterDefs int64 `json:"register_defs"`
	MemAccesses  int64 `json:"mem_accesses"`
	// ACENodes, TotalBits, ACEBits and CrashBits mirror epvf.Analysis.
	ACENodes  int64 `json:"ace_nodes"`
	TotalBits int64 `json:"total_bits"`
	ACEBits   int64 `json:"ace_bits"`
	CrashBits int64 `json:"crash_bits"`
	// GraphBuildSeconds and ModelsSeconds record the original
	// computation's cost (Figure 10's split). A cached summary reports
	// the cost of the run that filled the cache, which is why the
	// rendered timing rows are gated behind RenderOptions.Timing.
	GraphBuildSeconds float64 `json:"graph_build_seconds"`
	ModelsSeconds     float64 `json:"models_seconds"`
	// Classes is the bit-class census behind -classes.
	Classes ClassCensus `json:"classes"`
	// PerFunc holds the per-function breakdown, in render order.
	PerFunc []FuncRow `json:"per_func,omitempty"`
	// PerInstr holds every static instruction with counted bits, sorted
	// by descending ePVF (ties by ID); renderers truncate to N.
	PerInstr []InstrRow `json:"per_instr,omitempty"`
}

// ClassCensus splits every dynamic definition's bits into the paper's
// three predicted ranges.
type ClassCensus struct {
	CrashBits int64 `json:"crash_bits"`
	ACEBits   int64 `json:"ace_bits"`
	UnACEBits int64 `json:"unace_bits"`
}

// FuncRow is one per-function vulnerability row.
type FuncRow struct {
	Name      string `json:"name"`
	Dynamic   int64  `json:"dynamic"`
	TotalBits int64  `json:"total_bits"`
	ACEBits   int64  `json:"ace_bits"`
	CrashBits int64  `json:"crash_bits"`
}

// InstrRow is one per-instruction vulnerability row.
type InstrRow struct {
	ID        int    `json:"id"`
	Op        string `json:"op"`
	Dynamic   int64  `json:"dynamic"`
	TotalBits int64  `json:"total_bits"`
	ACEBits   int64  `json:"ace_bits"`
	CrashBits int64  `json:"crash_bits"`
}

// Summarize flattens an analysis into its cacheable summary. dynInstrs
// is the golden run's dynamic instruction count (golden.DynInstrs for a
// profiled module, trace.NumEvents() for a loaded trace — identical by
// construction).
func Summarize(moduleName string, a *epvf.Analysis, dynInstrs int64) *Summary {
	st := a.Graph.ComputeStats()
	s := &Summary{
		Module:            moduleName,
		DynInstrs:         dynInstrs,
		RegisterDefs:      st.RegisterDefs,
		MemAccesses:       st.MemAccesses,
		ACENodes:          a.ACENodes,
		TotalBits:         a.TotalBits,
		ACEBits:           a.ACEBits,
		CrashBits:         a.CrashResult.CrashBitCount,
		GraphBuildSeconds: a.Timing.GraphBuild.Seconds(),
		ModelsSeconds:     a.Timing.Models.Seconds(),
	}
	for _, d := range a.DefClasses() {
		nc := int64(popcount(d.CrashMask))
		s.Classes.CrashBits += nc
		if d.ACE {
			s.Classes.ACEBits += int64(d.Width) - nc
		} else {
			s.Classes.UnACEBits += int64(d.Width) - nc
		}
	}
	for _, v := range a.PerFunction() {
		s.PerFunc = append(s.PerFunc, FuncRow{
			Name: v.Func.Name, Dynamic: v.Dynamic,
			TotalBits: v.TotalBits, ACEBits: v.ACEBits, CrashBits: v.CrashBits,
		})
	}
	for _, v := range a.PerInstruction() {
		if v.TotalBits == 0 {
			continue
		}
		s.PerInstr = append(s.PerInstr, InstrRow{
			ID: v.Instr.ID, Op: v.Instr.Op.String(), Dynamic: v.Dynamic,
			TotalBits: v.TotalBits, ACEBits: v.ACEBits, CrashBits: v.CrashBits,
		})
	}
	sort.Slice(s.PerInstr, func(i, j int) bool {
		if e1, e2 := s.PerInstr[i].EPVF(), s.PerInstr[j].EPVF(); e1 != e2 {
			return e1 > e2
		}
		return s.PerInstr[i].ID < s.PerInstr[j].ID
	})
	return s
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// ratio mirrors the guarded divisions of internal/epvf exactly.
func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// PVF returns the classic Program Vulnerability Factor (Eq. 1).
func (s *Summary) PVF() float64 { return ratio(s.ACEBits, s.TotalBits) }

// EPVF returns the enhanced PVF (Eq. 2).
func (s *Summary) EPVF() float64 { return ratio(s.ACEBits-s.CrashBits, s.TotalBits) }

// CrashRate returns the modelled crash-rate estimate (§IV-C).
func (s *Summary) CrashRate() float64 { return ratio(s.CrashBits, s.TotalBits) }

// VulnerableBitReduction returns (PVF - ePVF) / PVF.
func (s *Summary) VulnerableBitReduction() float64 {
	p := s.PVF()
	if p == 0 {
		return 0
	}
	return (p - s.EPVF()) / p
}

// PVF and EPVF on rows mirror epvf.FuncVuln / epvf.InstrVuln.

func (r FuncRow) PVF() float64   { return ratio(r.ACEBits, r.TotalBits) }
func (r FuncRow) EPVF() float64  { return ratio(r.ACEBits-r.CrashBits, r.TotalBits) }
func (r InstrRow) PVF() float64  { return ratio(r.ACEBits, r.TotalBits) }
func (r InstrRow) EPVF() float64 { return ratio(r.ACEBits-r.CrashBits, r.TotalBits) }

// RenderOptions selects the report sections, mirroring cmd/epvf's
// flags.
type RenderOptions struct {
	// Timing includes the graph-construction and model time rows.
	// Disable it to compare daemon and local output byte-for-byte (a
	// cached summary reports the filling run's cost, not this one's).
	Timing bool
	// Classes appends the bit-class census table.
	Classes bool
	// PerFunc appends the per-function vulnerability table.
	PerFunc bool
	// PerInstr > 0 appends the N most SDC-prone instructions.
	PerInstr int
}

// Render prints the full report for the selected sections.
func (s *Summary) Render(opts RenderOptions) string {
	out := s.RenderMain(opts.Timing)
	if opts.Classes {
		out += s.RenderClasses()
	}
	if opts.PerFunc {
		out += s.RenderPerFunc()
	}
	if opts.PerInstr > 0 {
		out += s.RenderPerInstr(opts.PerInstr)
	}
	return out
}

// RenderMain prints the headline metric table.
func (s *Summary) RenderMain(timing bool) string {
	t := report.NewTable(fmt.Sprintf("ePVF analysis: %s", s.Module), "Metric", "Value")
	t.AddRow("dynamic IR instructions", s.DynInstrs)
	t.AddRow("register definitions", s.RegisterDefs)
	t.AddRow("memory accesses", s.MemAccesses)
	t.AddRow("ACE-graph nodes", s.ACENodes)
	t.AddRow("total register bits", s.TotalBits)
	t.AddRow("ACE bits", s.ACEBits)
	t.AddRow("crash-causing bits", s.CrashBits)
	t.AddRow("PVF", s.PVF())
	t.AddRow("ePVF", s.EPVF())
	t.AddRow("estimated crash rate", report.Percent(s.CrashRate()))
	t.AddRow("vulnerable-bit reduction vs PVF", report.Percent(s.VulnerableBitReduction()))
	if timing {
		t.AddRow("graph construction time", fmt.Sprintf("%.3fs", s.GraphBuildSeconds))
		t.AddRow("crash+propagation model time", fmt.Sprintf("%.3fs", s.ModelsSeconds))
	}
	return t.String()
}

// RenderClasses prints the bit-class census (-classes).
func (s *Summary) RenderClasses() string {
	c := s.Classes
	total := c.CrashBits + c.ACEBits + c.UnACEBits
	ct := report.NewTable("\nBit-class census (dynamic definitions)",
		"Class", "Bits", "Share")
	ct.AddRow("crash-predicted", c.CrashBits, report.Percent(ratio(c.CrashBits, total)))
	ct.AddRow("ACE (SDC-predicted)", c.ACEBits, report.Percent(ratio(c.ACEBits, total)))
	ct.AddRow("unACE (benign-predicted)", c.UnACEBits, report.Percent(ratio(c.UnACEBits, total)))
	ct.AddRow("total", total, report.Percent(1))
	return ct.String()
}

// RenderPerFunc prints the per-function vulnerability table (-per-func).
func (s *Summary) RenderPerFunc() string {
	ft := report.NewTable("\nPer-function vulnerability",
		"Function", "Dyn instrs", "PVF", "ePVF")
	for _, v := range s.PerFunc {
		ft.AddRow("@"+v.Name, v.Dynamic, v.PVF(), v.EPVF())
	}
	return ft.String()
}

// RenderPerInstr prints the top-n instruction table (-per-instr).
func (s *Summary) RenderPerInstr(n int) string {
	rows := s.PerInstr
	if len(rows) > n {
		rows = rows[:n]
	}
	pt := report.NewTable("\nMost SDC-prone static instructions (by ePVF)",
		"ID", "Opcode", "Dynamic", "PVF", "ePVF")
	for _, v := range rows {
		pt.AddRow(v.ID, v.Op, v.Dynamic, v.PVF(), v.EPVF())
	}
	return pt.String()
}
