// Package snapshot maintains chains of copy-on-write execution snapshots
// along a program's golden path, so fault-injection runs can restore the
// nearest snapshot at-or-below their injection event and execute only the
// delta instead of replaying the whole prefix (the FastFlip observation
// applied to our execution layer).
//
// A Chain owns one stepwise golden execution (interp.Exec) and captures
// its state every stride events, lazily: snapshots materialize the first
// time a caller asks for an event beyond the captured frontier, and the
// chain never runs further than the furthest request. Capture cost is
// O(dirty pages) thanks to mem's page-level COW fork; restore cost is an
// O(frames + page pointers) fork of the frozen state.
//
// Chains are safe for concurrent use: lookups serialize only the lazy
// extension, and the returned States are immutable (interp.Resume forks
// them).
package snapshot

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/obs"
)

// DefaultMaxSnapshots caps a chain's snapshot count; the stride is widened
// when the trace is long enough to exceed it. Bounds memory at roughly
// maxSnapshots x live-page-set.
const DefaultMaxSnapshots = 1024

// MinStride is the smallest auto-selected stride: below this, capture
// overhead rivals the replay it saves.
const MinStride = 64

// DirtyPageBuckets is the histogram layout for per-capture dirty pages.
var DirtyPageBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// Config tunes snapshot placement.
type Config struct {
	// Stride is the event distance between snapshots; 0 picks
	// AutoStride(totalEvents).
	Stride int64
	// MaxSnapshots caps the chain length (0 = DefaultMaxSnapshots); the
	// stride widens to fit.
	MaxSnapshots int
}

// AutoStride returns the default snapshot spacing for a trace of the given
// length: ~sqrt(T) events, floored at MinStride. With T/stride ~ sqrt(T)
// snapshots the worst-case replay delta and the capture count balance —
// total work per campaign pass is O(T + runs*sqrt(T)) instead of
// O(runs*T).
func AutoStride(totalEvents int64) int64 {
	s := int64(math.Sqrt(float64(totalEvents)))
	if s < MinStride {
		s = MinStride
	}
	return s
}

// Stats aggregates chain activity; all fields are atomic so workers update
// them lock-free.
type Stats struct {
	Captures       atomic.Int64
	Restores       atomic.Int64
	Converged      atomic.Int64
	ReplayedEvents atomic.Int64
	SkippedEvents  atomic.Int64
	DirtyPages     atomic.Int64
}

// View is a point-in-time copy of Stats in the shape shared by
// `campaign status -json` and the /campaign endpoint.
type View struct {
	Enabled        bool  `json:"enabled"`
	Stride         int64 `json:"stride"`
	Captures       int64 `json:"captures"`
	Restores       int64 `json:"restores"`
	Converged      int64 `json:"converged"`
	ReplayedEvents int64 `json:"replayed_events"`
	SkippedEvents  int64 `json:"skipped_events"`
	DirtyPages     int64 `json:"dirty_pages"`
}

// Chain is a lazily-extended sequence of golden-path snapshots.
type Chain struct {
	mu     sync.Mutex
	exec   *interp.Exec
	live   bool  // golden execution still has instructions left
	cursor int64 // next nominal capture event
	snaps  []*interp.State
	stride int64

	lastDirty int64
	stats     Stats
}

// NewChain starts a golden execution of m under cfg and captures its
// event-0 state. totalEvents is the golden trace length (it sizes the auto
// stride); cfg must match the fault-injection run configuration exactly
// (layout, alignment, budget) or resumed runs will diverge from scratch
// runs.
func NewChain(m *ir.Module, cfg interp.Config, totalEvents int64, scfg Config) (*Chain, error) {
	stride := scfg.Stride
	if stride <= 0 {
		stride = AutoStride(totalEvents)
	}
	maxSnaps := scfg.MaxSnapshots
	if maxSnaps <= 0 {
		maxSnaps = DefaultMaxSnapshots
	}
	if totalEvents/stride >= int64(maxSnaps) {
		stride = totalEvents/int64(maxSnaps) + 1
	}
	exec, err := interp.NewExec(m, cfg)
	if err != nil {
		return nil, err
	}
	c := &Chain{exec: exec, live: true, cursor: stride, stride: stride}
	c.capture()
	return c, nil
}

// Stride returns the effective snapshot spacing.
func (c *Chain) Stride() int64 { return c.stride }

// Len returns the number of snapshots captured so far.
func (c *Chain) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.snaps)
}

// capture records the execution's current state. Caller holds mu (or is
// the constructor).
func (c *Chain) capture() {
	c.snaps = append(c.snaps, c.exec.Capture())
	dirty := c.exec.DirtyPages() - c.lastDirty
	c.lastDirty = c.exec.DirtyPages()
	c.stats.Captures.Add(1)
	c.stats.DirtyPages.Add(dirty)
	if r := obs.Default(); r != nil {
		r.Counter("epvf_snapshot_captures_total").Inc()
		r.Histogram("epvf_snapshot_dirty_pages", DirtyPageBuckets).Observe(float64(dirty))
	}
}

// extendTo advances the golden execution, capturing at stride boundaries,
// until the next nominal capture point would pass event (or the program
// ends). Caller holds mu.
func (c *Chain) extendTo(event int64) {
	for c.live && c.cursor <= event {
		stop := c.cursor
		c.cursor += c.stride
		c.live = c.exec.Advance(stop)
		if !c.live {
			return
		}
		// Phi groups retire atomically, so the pause can undershoot the
		// nominal point; skip duplicate captures at an unchanged event.
		if c.exec.Event() > c.snaps[len(c.snaps)-1].Event() {
			c.capture()
		}
	}
}

// Nearest returns the latest snapshot at-or-below event, extending the
// chain if the frontier has not reached it yet. The event-0 snapshot
// guarantees a hit.
func (c *Chain) Nearest(event int64) *interp.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.extendTo(event)
	i := sort.Search(len(c.snaps), func(i int) bool { return c.snaps[i].Event() > event })
	return c.snaps[i-1]
}

// Next returns the first snapshot with Event > after, or nil when the
// golden execution ends before another snapshot exists. It serves as the
// checkpoint source for interp.Convergence.
func (c *Chain) Next(after int64) *interp.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		i := sort.Search(len(c.snaps), func(i int) bool { return c.snaps[i].Event() > after })
		if i < len(c.snaps) {
			return c.snaps[i]
		}
		if !c.live {
			return nil
		}
		c.extendTo(c.cursor) // one more stride step
	}
}

// NoteRestore records one resumed run's accounting: events actually
// executed versus skipped (restored prefix plus any converged tail).
func (c *Chain) NoteRestore(res *interp.Result) {
	c.stats.Restores.Add(1)
	c.stats.ReplayedEvents.Add(res.Executed)
	c.stats.SkippedEvents.Add(res.DynInstrs - res.Executed)
	if res.Converged {
		c.stats.Converged.Add(1)
	}
	if r := obs.Default(); r != nil {
		r.Counter("epvf_snapshot_restores_total").Inc()
		r.Counter("epvf_snapshot_replayed_events_total").Add(res.Executed)
		r.Counter("epvf_snapshot_skipped_events_total").Add(res.DynInstrs - res.Executed)
		if res.Converged {
			r.Counter("epvf_snapshot_converged_total").Inc()
		}
	}
}

// View snapshots the chain's stats.
func (c *Chain) View() View {
	return View{
		Enabled:        true,
		Stride:         c.stride,
		Captures:       c.stats.Captures.Load(),
		Restores:       c.stats.Restores.Load(),
		Converged:      c.stats.Converged.Load(),
		ReplayedEvents: c.stats.ReplayedEvents.Load(),
		SkippedEvents:  c.stats.SkippedEvents.Load(),
		DirtyPages:     c.stats.DirtyPages.Load(),
	}
}
