package snapshot

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	return m
}

const loopSrc = `
int f(int x) { return x * 3 + 1; }
int main() {
  int arr[8];
  int i = 0; int sum = 0;
  while (i < 300) {
    int t = f(i);
    arr[i % 8] = t;
    sum = sum + t;
    i = i + 1;
  }
  output(sum);
  output(arr[3]);
  return 0;
}
`

func TestChainInvariants(t *testing.T) {
	m := compile(t, loopSrc)
	cfg := interp.Config{MaxDynInstrs: 1 << 20}
	golden, err := interp.Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChain(m, cfg, golden.DynInstrs, Config{Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Stride() != 100 {
		t.Fatalf("stride = %d", ch.Stride())
	}
	prevLen := ch.Len()
	if prevLen != 1 {
		t.Fatalf("fresh chain has %d snapshots, want 1 (event 0)", prevLen)
	}
	for _, event := range []int64{0, 1, 99, 100, 101, 555, golden.DynInstrs - 1} {
		st := ch.Nearest(event)
		if st.Event() > event {
			t.Fatalf("Nearest(%d) = %d, above the event", event, st.Event())
		}
		if event-st.Event() >= 2*ch.Stride() {
			t.Fatalf("Nearest(%d) = %d, more than two strides below", event, st.Event())
		}
	}
	// Lazy: asking for an early event again must not extend further.
	grown := ch.Len()
	ch.Nearest(0)
	if ch.Len() != grown {
		t.Fatal("Nearest(0) extended the chain")
	}
	// Next walks strictly forward and ends with nil.
	var last int64 = -1
	for n := 0; ; n++ {
		st := ch.Next(last)
		if st == nil {
			break
		}
		if st.Event() <= last {
			t.Fatalf("Next(%d) = %d, not strictly above", last, st.Event())
		}
		last = st.Event()
		if n > 10000 {
			t.Fatal("Next never terminated")
		}
	}
	if last >= golden.DynInstrs {
		t.Fatalf("snapshot at %d past the program end %d", last, golden.DynInstrs)
	}
	v := ch.View()
	if v.Captures != int64(ch.Len()) || !v.Enabled || v.Stride != 100 {
		t.Fatalf("View = %+v", v)
	}
}

func TestStrideCapAndAuto(t *testing.T) {
	if s := AutoStride(100); s != MinStride {
		t.Fatalf("AutoStride(100) = %d, want %d", s, MinStride)
	}
	if s := AutoStride(1 << 20); s != 1024 {
		t.Fatalf("AutoStride(1M) = %d, want 1024", s)
	}
	m := compile(t, loopSrc)
	golden, err := interp.Run(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChain(m, interp.Config{}, golden.DynInstrs, Config{Stride: 1, MaxSnapshots: 5})
	if err != nil {
		t.Fatal(err)
	}
	ch.Nearest(golden.DynInstrs) // force full extension
	if n := ch.Len(); n > 6 {
		t.Fatalf("cap ignored: %d snapshots", n)
	}
}

// genProgram emits a random lang program: loops over arrays with data
// movement through helpers, conditionals, and outputs. Deterministic under
// seed.
func genProgram(rng *rand.Rand) string {
	n := 50 + rng.Intn(200)
	mod := 4 + rng.Intn(8)
	mul := 1 + rng.Intn(9)
	add := rng.Intn(100)
	var b strings.Builder
	fmt.Fprintf(&b, "int f(int x) { return x * %d + %d; }\n", mul, add)
	fmt.Fprintf(&b, "int g(int x) { if (x < %d) { return x + 1; } return x - f(x %% 7); }\n", rng.Intn(50))
	b.WriteString("int main() {\n")
	fmt.Fprintf(&b, "  int arr[%d];\n", mod)
	fmt.Fprintf(&b, "  int i = 0; int acc = %d;\n", rng.Intn(10))
	fmt.Fprintf(&b, "  while (i < %d) {\n", n)
	fmt.Fprintf(&b, "    int t = f(i) ^ g(acc %% 31);\n")
	fmt.Fprintf(&b, "    arr[i %% %d] = t;\n", mod)
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&b, "    if (t %% 5 == 0) { acc = acc + arr[(i + 1) %% %d]; } else { acc = acc ^ t; }\n", mod)
	case 1:
		fmt.Fprintf(&b, "    acc = acc + (t >> 2) - arr[t %% %d & %d];\n", mod, mod-1)
	default:
		fmt.Fprintf(&b, "    acc = (acc << 1) ^ arr[i %% %d];\n", mod)
	}
	b.WriteString("    i = i + 1;\n  }\n")
	fmt.Fprintf(&b, "  int j = 0;\n  while (j < %d) { output(arr[j]); j = j + 1; }\n", mod)
	b.WriteString("  output(acc);\n  return 0;\n}\n")
	return b.String()
}

// TestPropertyResumedRunsBitIdentical is the core differential property:
// for randomized lang programs and random injection targets, a run resumed
// from the nearest chain snapshot (with convergence enabled) is
// bit-identical to a from-scratch run — same outputs, exception, hang
// flag, and final event position.
func TestPropertyResumedRunsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	programs := 6
	if testing.Short() {
		programs = 2
	}
	for p := 0; p < programs; p++ {
		src := genProgram(rng)
		m := compile(t, src)
		cfg := interp.Config{MaxDynInstrs: 1 << 22}
		golden, err := interp.Run(m, cfg)
		if err != nil {
			t.Fatalf("golden: %v\n%s", err, src)
		}
		if golden.Exception != nil || golden.Hang {
			t.Fatalf("golden run not clean: %+v\n%s", golden, src)
		}
		ch, err := NewChain(m, cfg, golden.DynInstrs, Config{Stride: 50 + int64(rng.Intn(200))})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			event := rng.Int63n(golden.DynInstrs)
			bit := rng.Intn(32)
			inj := func() *interp.Injection { return &interp.Injection{Event: event, Bit: bit} }
			scratch, err := interp.Run(m, interp.Config{MaxDynInstrs: cfg.MaxDynInstrs, Injection: inj()})
			if err != nil {
				t.Fatalf("scratch: %v", err)
			}
			st := ch.Nearest(event)
			got, err := interp.Resume(st, interp.ResumeOptions{
				Injection:   inj(),
				Convergence: &interp.Convergence{Golden: golden, Next: ch.Next},
			})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			ch.NoteRestore(got)
			label := fmt.Sprintf("program %d trial %d event %d bit %d", p, trial, event, bit)
			if got.Hang != scratch.Hang || got.DynInstrs != scratch.DynInstrs {
				t.Fatalf("%s: hang/dyn mismatch: got (%v,%d) want (%v,%d)\n%s",
					label, got.Hang, got.DynInstrs, scratch.Hang, scratch.DynInstrs, src)
			}
			if (got.Exception == nil) != (scratch.Exception == nil) {
				t.Fatalf("%s: exception mismatch: got %v want %v", label, got.Exception, scratch.Exception)
			}
			if got.Exception != nil && (got.Exception.Kind != scratch.Exception.Kind ||
				got.Exception.DynIdx != scratch.Exception.DynIdx) {
				t.Fatalf("%s: exception = %+v, want %+v", label, got.Exception, scratch.Exception)
			}
			if len(got.Outputs) != len(scratch.Outputs) {
				t.Fatalf("%s: %d outputs, want %d", label, len(got.Outputs), len(scratch.Outputs))
			}
			for i := range scratch.Outputs {
				if got.Outputs[i] != scratch.Outputs[i] {
					t.Fatalf("%s: output %d = %+v, want %+v", label, i, got.Outputs[i], scratch.Outputs[i])
				}
			}
		}
		v := ch.View()
		if v.Restores != 30 {
			t.Fatalf("restores = %d, want 30", v.Restores)
		}
		if v.ReplayedEvents+v.SkippedEvents == 0 {
			t.Fatal("no events accounted")
		}
	}
}

// TestConcurrentNearestResume hammers one chain from many goroutines under
// -race: lazy extension, concurrent state forks, and stats updates.
func TestConcurrentNearestResume(t *testing.T) {
	m := compile(t, loopSrc)
	cfg := interp.Config{MaxDynInstrs: 1 << 20}
	golden, err := interp.Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChain(m, cfg, golden.DynInstrs, Config{Stride: 64})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for trial := 0; trial < 20; trial++ {
				event := rng.Int63n(golden.DynInstrs)
				st := ch.Nearest(event)
				res, err := interp.Resume(st, interp.ResumeOptions{
					Injection:   &interp.Injection{Event: event, Bit: rng.Intn(16)},
					Convergence: &interp.Convergence{Golden: golden, Next: ch.Next},
				})
				if err != nil {
					done <- err
					return
				}
				ch.NoteRestore(res)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if v := ch.View(); v.Restores != 160 {
		t.Fatalf("restores = %d", v.Restores)
	}
}
