// Package stats provides the small statistical toolkit the evaluation
// needs: means and variances, binomial confidence intervals for
// fault-injection rates (the paper reports 95% CIs as error bars),
// geometric means (Fig. 13 aggregates SDC rates geometrically), empirical
// CDFs (Fig. 12) and simple linear fits.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (zero for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of positive values; zero and negative
// entries are clamped to a small epsilon to keep Fig. 13-style aggregation
// defined.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-9
	s := 0.0
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Proportion is an observed binomial proportion with its sample size.
type Proportion struct {
	Successes int
	N         int
}

// normalized clamps a proportion into a well-formed state: a non-positive
// sample size is empty, and successes are clamped into [0, N] so the rate
// and interval stay inside [0, 1] for any input.
func (p Proportion) normalized() Proportion {
	if p.N <= 0 {
		return Proportion{}
	}
	if p.Successes < 0 {
		p.Successes = 0
	}
	if p.Successes > p.N {
		p.Successes = p.N
	}
	return p
}

// Rate returns the point estimate, clamped into [0, 1].
func (p Proportion) Rate() float64 {
	p = p.normalized()
	if p.N == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.N)
}

// z95 is the standard normal quantile for a 95% two-sided interval.
const z95 = 1.959963984540054

// WilsonCI returns the 95% Wilson score interval for the proportion — the
// interval used for the fault-injection error bars. It behaves sensibly at
// the 0 and 1 boundaries where the normal approximation fails: for any
// input (including n=0, k=0, k=n and out-of-range counts) the interval is
// clamped so that 0 <= lo <= Rate() <= hi <= 1. An empty sample yields the
// vacuous interval [0, 1].
func (p Proportion) WilsonCI() (lo, hi float64) {
	p = p.normalized()
	if p.N == 0 {
		return 0, 1
	}
	n := float64(p.N)
	phat := p.Rate()
	z2 := z95 * z95
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z95 * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n)) / denom
	lo, hi = center-half, center+half
	// Clamp against floating-point drift at the boundaries (k=0 makes
	// center and half analytically equal; k=n mirrors it at one) and keep
	// the point estimate inside the interval.
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	if lo > phat {
		lo = phat
	}
	if hi < phat {
		hi = phat
	}
	return lo, hi
}

// HalfWidth returns the 95% CI half width around the point estimate (a
// symmetric approximation used for compact "±" reporting).
func (p Proportion) HalfWidth() float64 {
	lo, hi := p.WilsonCI()
	return (hi - lo) / 2
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	// P is the fraction of samples <= X.
	P float64
}

// CDF returns the empirical CDF of xs as sorted points (deduplicated on X).
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CDFPoint
	for i, x := range sorted {
		p := float64(i+1) / n
		if len(out) > 0 && out[len(out)-1].X == x {
			out[len(out)-1].P = p
			continue
		}
		out = append(out, CDFPoint{X: x, P: p})
	}
	return out
}

// CDFAt evaluates an empirical CDF at x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range cdf {
		if pt.X > x {
			break
		}
		p = pt.P
	}
	return p
}

// ErrNoData reports a fit over fewer than two points.
var ErrNoData = errors.New("stats: need at least two points")

// LinearFit returns the least-squares slope and intercept of y over x.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, ErrNoData
	}
	mx, my := Mean(x), Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0, 0, ErrNoData
	}
	slope = num / den
	return slope, my - slope*mx, nil
}

// NormalizedVariance returns variance over squared mean — the sampling
// regularity indicator of §IV-E.
func NormalizedVariance(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Variance(xs) / (m * m)
}
