package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Errorf("mean = %v", Mean(xs))
	}
	if !almost(Variance(xs), 32.0/7) {
		t.Errorf("variance = %v", Variance(xs))
	}
	if !almost(StdDev(xs), math.Sqrt(32.0/7)) {
		t.Errorf("stddev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs must be zero")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4, 16}), 4) {
		t.Errorf("geomean = %v", GeoMean([]float64{1, 4, 16}))
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	// Zero entries clamp rather than collapse to 0.
	if GeoMean([]float64{0, 1}) <= 0 {
		t.Error("clamped geomean must stay positive")
	}
}

func TestWilsonCI(t *testing.T) {
	p := Proportion{Successes: 63, N: 100}
	lo, hi := p.WilsonCI()
	if !(lo < 0.63 && 0.63 < hi) {
		t.Errorf("CI [%v, %v] does not bracket the point estimate", lo, hi)
	}
	if hi-lo > 0.2 {
		t.Errorf("CI width %v too wide for n=100", hi-lo)
	}
	// Boundary behaviour.
	lo0, hi0 := Proportion{Successes: 0, N: 50}.WilsonCI()
	if lo0 != 0 || hi0 <= 0 {
		t.Errorf("zero-successes CI = [%v, %v]", lo0, hi0)
	}
	lo1, hi1 := Proportion{Successes: 50, N: 50}.WilsonCI()
	if hi1 != 1 || lo1 >= 1 {
		t.Errorf("all-successes CI = [%v, %v]", lo1, hi1)
	}
	// An empty sample carries no information: the vacuous interval.
	if l, h := (Proportion{}).WilsonCI(); l != 0 || h != 1 {
		t.Errorf("empty proportion CI = [%v, %v], want [0, 1]", l, h)
	}
	if l, h := (Proportion{Successes: 3, N: 0}).WilsonCI(); l != 0 || h != 1 {
		t.Errorf("n=0 CI = [%v, %v], want [0, 1]", l, h)
	}
}

// TestWilsonCIProperties asserts, for arbitrary (including degenerate and
// out-of-range) inputs, that 0 <= lo <= Rate() <= hi <= 1 and that the
// interval never inverts.
func TestWilsonCIProperties(t *testing.T) {
	f := func(succ int, n int) bool {
		p := Proportion{Successes: succ, N: n}
		lo, hi := p.WilsonCI()
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		r := p.Rate()
		if r < 0 || r > 1 {
			return false
		}
		return lo <= r && r <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// The documented edge cases explicitly.
	for _, p := range []Proportion{
		{0, 0}, {0, 1}, {1, 1}, {0, 50}, {50, 50}, {-3, 10}, {20, 10}, {5, -1},
	} {
		lo, hi := p.WilsonCI()
		r := p.Rate()
		if !(0 <= lo && lo <= r && r <= hi && hi <= 1) {
			t.Errorf("Proportion%+v: violated 0<=lo<=rate<=hi<=1: lo=%v rate=%v hi=%v", p, lo, r, hi)
		}
	}
}

func TestCIWidthShrinksWithN(t *testing.T) {
	small := Proportion{Successes: 10, N: 20}.HalfWidth()
	large := Proportion{Successes: 1000, N: 2000}.HalfWidth()
	if large >= small {
		t.Errorf("CI half width did not shrink: %v -> %v", small, large)
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{3, 1, 2, 2})
	if len(cdf) != 3 {
		t.Fatalf("cdf points = %d, want 3", len(cdf))
	}
	if !almost(CDFAt(cdf, 0.5), 0) {
		t.Error("CDF below min must be 0")
	}
	if !almost(CDFAt(cdf, 1), 0.25) {
		t.Errorf("CDF(1) = %v", CDFAt(cdf, 1))
	}
	if !almost(CDFAt(cdf, 2), 0.75) {
		t.Errorf("CDF(2) = %v", CDFAt(cdf, 2))
	}
	if !almost(CDFAt(cdf, 99), 1) {
		t.Error("CDF above max must be 1")
	}
	if CDF(nil) != nil {
		t.Error("empty CDF must be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		cdf := CDF(xs)
		prev := 0.0
		for _, p := range cdf {
			if p.P < prev {
				return false
			}
			prev = p.P
		}
		return len(xs) == 0 || almost(cdf[len(cdf)-1].P, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(slope, 2) || !almost(intercept, 1) {
		t.Errorf("fit = %vx + %v", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("fit of one point must fail")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("vertical fit must fail")
	}
}

func TestNormalizedVariance(t *testing.T) {
	if NormalizedVariance([]float64{5, 5, 5}) != 0 {
		t.Error("constant data must have zero normalized variance")
	}
	if NormalizedVariance(nil) != 0 {
		t.Error("empty data must be zero")
	}
	spread := NormalizedVariance([]float64{1, 10})
	tight := NormalizedVariance([]float64{9, 10})
	if spread <= tight {
		t.Error("normalized variance did not discriminate spread")
	}
}
