package trace

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/ir"
	"repro/internal/mem"
)

// The on-disk representation references static instructions by ID, so a
// saved trace can only be loaded against the module that produced it (same
// name and instruction count — compilation is deterministic, so a rebuild
// of the same source matches). Profiling a large benchmark once and
// re-analyzing offline mirrors how the paper separates its profiling and
// modelling phases.

type savedEvent struct {
	InstrID int32
	Ops     []uint64
	OpDefs  []int64
	Result  uint64
	Addr    uint64
	MemDef  int64
	VMAVer  int32
	SP      uint64
}

type savedTrace struct {
	ModuleName string
	NumInstrs  int
	Events     []savedEvent
	Outputs    []Output
	Snapshots  map[int][]mem.VMA
	Layout     mem.Layout
}

// Save writes the trace in gob form.
func (t *Trace) Save(w io.Writer) error {
	st := savedTrace{
		ModuleName: t.Module.Name,
		NumInstrs:  t.Module.NumInstrs(),
		Events:     make([]savedEvent, len(t.Events)),
		Outputs:    t.Outputs,
		Snapshots:  t.Snapshots,
		Layout:     t.Layout,
	}
	for i := range t.Events {
		e := &t.Events[i]
		st.Events[i] = savedEvent{
			InstrID: int32(e.Instr.ID),
			Ops:     e.Ops,
			OpDefs:  e.OpDefs,
			Result:  e.Result,
			Addr:    e.Addr,
			MemDef:  e.MemDef,
			VMAVer:  int32(e.VMAVer),
			SP:      e.SP,
		}
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("trace: encoding: %w", err)
	}
	return nil
}

// Load reads a trace saved by Save and re-binds it to m, which must be the
// module (or an identical recompilation of the module) that produced it.
func Load(r io.Reader, m *ir.Module) (*Trace, error) {
	var st savedTrace
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	if st.ModuleName != m.Name {
		return nil, fmt.Errorf("trace: saved for module %q, loading against %q", st.ModuleName, m.Name)
	}
	if st.NumInstrs != m.NumInstrs() {
		return nil, fmt.Errorf("trace: saved against %d static instructions, module has %d",
			st.NumInstrs, m.NumInstrs())
	}
	byID := make([]*ir.Instr, m.NumInstrs())
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				byID[in.ID] = in
			}
		}
	}
	tr := &Trace{
		Module:    m,
		Events:    make([]Event, len(st.Events)),
		Outputs:   st.Outputs,
		Snapshots: st.Snapshots,
		Layout:    st.Layout,
	}
	for i := range st.Events {
		se := &st.Events[i]
		if int(se.InstrID) < 0 || int(se.InstrID) >= len(byID) {
			return nil, fmt.Errorf("trace: event %d references unknown instruction %d", i, se.InstrID)
		}
		tr.Events[i] = Event{
			Instr:  byID[se.InstrID],
			Ops:    se.Ops,
			OpDefs: se.OpDefs,
			Result: se.Result,
			Addr:   se.Addr,
			MemDef: se.MemDef,
			VMAVer: int(se.VMAVer),
			SP:     se.SP,
		}
	}
	return tr, nil
}
