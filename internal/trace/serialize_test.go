package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/epvf"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/trace"
)

const kernel = `
void main() {
  long *a = malloc(24 * 8);
  int i;
  for (i = 0; i < 24; i = i + 1) { a[i] = i * 9; }
  long s = 0;
  for (i = 0; i < 24; i = i + 1) { s = s + a[i]; }
  output(s);
  free(a);
}
`

func recorded(t *testing.T) *trace.Trace {
	t.Helper()
	m, err := lang.Compile("serial", kernel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(m, interp.Config{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := recorded(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Load against a fresh deterministic recompilation.
	m2, err := lang.Compile("serial", kernel)
	if err != nil {
		t.Fatal(err)
	}
	back, err := trace.Load(&buf, m2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.NumEvents() != tr.NumEvents() || len(back.Outputs) != len(tr.Outputs) {
		t.Fatal("shape lost in round trip")
	}
	for i := range tr.Events {
		a, b := &tr.Events[i], &back.Events[i]
		if a.Instr.ID != b.Instr.ID || a.Result != b.Result || a.Addr != b.Addr ||
			a.MemDef != b.MemDef || a.VMAVer != b.VMAVer || a.SP != b.SP {
			t.Fatalf("event %d differs after round trip", i)
		}
	}
	// The reloaded trace analyzes identically.
	a1 := epvf.AnalyzeTrace(tr, epvf.Config{})
	a2 := epvf.AnalyzeTrace(back, epvf.Config{})
	if a1.PVF() != a2.PVF() || a1.EPVF() != a2.EPVF() ||
		a1.CrashResult.CrashBitCount != a2.CrashResult.CrashBitCount {
		t.Errorf("analysis differs on reloaded trace: PVF %v/%v ePVF %v/%v",
			a1.PVF(), a2.PVF(), a1.EPVF(), a2.EPVF())
	}
}

func TestLoadRejectsWrongModule(t *testing.T) {
	tr := recorded(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := lang.Compile("other", `void main() { output(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Load(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("Load accepted a trace from a different module")
	}
	// Same name, different body.
	sameName, err := lang.Compile("serial", `void main() { output(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Load(bytes.NewReader(buf.Bytes()), sameName); err == nil {
		t.Error("Load accepted a trace against a structurally different module")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	m, err := lang.Compile("serial", kernel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Load(bytes.NewReader([]byte("not a trace")), m); err == nil {
		t.Error("Load accepted garbage")
	}
}
