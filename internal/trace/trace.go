// Package trace defines the dynamic instruction trace produced by the
// interpreter: one event per executed IR instruction, carrying the operand
// and result bit patterns, the def-use links needed to build the dynamic
// dependence graph, and — for memory accesses — the effective address, the
// VMA-table version and the stack pointer at the time of the access (the
// state the paper's run-time probe captures from /proc, §III-D).
package trace

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mem"
)

// NoDef marks an operand with no defining event (a constant immediate or a
// global's address).
const NoDef = int64(-1)

// Event records one dynamic instruction execution.
type Event struct {
	// Instr is the static instruction that executed.
	Instr *ir.Instr
	// Ops are the raw operand bit patterns as read at execution time. For
	// phi, a single entry: the chosen incoming value. For condbr, the
	// condition.
	Ops []uint64
	// OpDefs gives, for each entry of Ops, the index of the event whose
	// result produced it, or NoDef.
	OpDefs []int64
	// Result is the raw result bit pattern for value-producing
	// instructions.
	Result uint64
	// Addr is the effective address for load/store events.
	Addr uint64
	// MemDef is, for load events, the index of the store event that last
	// wrote the loaded location, or NoDef for initial memory (globals,
	// zero-fill).
	MemDef int64
	// VMAVer is the VMA-table version at a load/store, for replaying
	// segment boundaries in the crash model.
	VMAVer int
	// SP is the stack pointer at a load/store.
	SP uint64
}

// IsMemAccess reports whether the event is a load or store.
func (e *Event) IsMemAccess() bool { return e.Instr.Op.IsMemAccess() }

// Output records one value emitted through the output intrinsic.
type Output struct {
	// EventIdx is the dynamic index of the output event.
	EventIdx int64
	// Def is the event that produced the emitted value, or NoDef.
	Def int64
	// Bits is the raw emitted bit pattern.
	Bits uint64
	// Width is the emitted value's bit width.
	Width int
}

// Trace is a full dynamic execution record of one program run.
type Trace struct {
	Module  *ir.Module
	Events  []Event
	Outputs []Output
	// Snapshots maps VMA-table versions to the VMA tables captured during
	// the run.
	Snapshots map[int][]mem.VMA
	// Layout is the memory layout the program ran under.
	Layout mem.Layout
}

// NumEvents returns the dynamic instruction count.
func (t *Trace) NumEvents() int64 { return int64(len(t.Events)) }

// Use identifies one dynamic operand read: operand Op of event Event. Uses
// are the "register at instruction i" granularity over which PVF and ePVF
// count bits (paper Eq. 1–3), and the granularity at which the fault
// injector corrupts values.
type Use struct {
	Event int64
	Op    int
}

// String renders the use for diagnostics.
func (u Use) String() string { return fmt.Sprintf("ev%d.op%d", u.Event, u.Op) }

// UseWidth returns the bit width of the given operand use.
func (t *Trace) UseWidth(u Use) int {
	ev := &t.Events[u.Event]
	return OperandWidth(ev.Instr, u.Op)
}

// OperandWidth returns the bit width of operand op of instruction in, under
// the phi convention (a phi event stores only the chosen incoming value).
func OperandWidth(in *ir.Instr, op int) int {
	if in.Op == ir.OpPhi {
		return in.Type().BitWidth()
	}
	if op < 0 || op >= len(in.Args) {
		return 0
	}
	return in.Args[op].Type().BitWidth()
}

// IsDef reports whether the instruction defines a register (produces a
// value). Register definitions are the "registers" resource over which PVF
// and ePVF count bits — each register counted once, as in the paper's
// running example — and the targets of the LLFI-style fault injector.
func IsDef(in *ir.Instr) bool { return !in.Type().IsVoid() }

// DefWidth returns the bit width of the register defined by in (zero for
// void instructions).
func DefWidth(in *ir.Instr) int { return in.Type().BitWidth() }

// InjectableOperand reports whether operand op of instruction in is a value
// carried in a virtual register rather than an immediate constant. The
// propagation model records crash ranges only for register operands — a
// fault cannot flip an instruction-encoded immediate (§II-E).
func InjectableOperand(in *ir.Instr, op int) bool {
	if in.Op == ir.OpPhi {
		return op == 0 && len(in.Args) > 0
	}
	if op < 0 || op >= len(in.Args) {
		return false
	}
	switch in.Args[op].(type) {
	case *ir.Instr, *ir.Param:
		return true
	default:
		return false
	}
}

// NumOperands returns the number of recorded operand slots for instruction
// in (phi events record exactly one).
func NumOperands(in *ir.Instr) int {
	if in.Op == ir.OpPhi {
		return 1
	}
	return len(in.Args)
}
