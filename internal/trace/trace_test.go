package trace

import (
	"testing"

	"repro/internal/ir"
)

func TestOperandWidth(t *testing.T) {
	add := &ir.Instr{Op: ir.OpAdd, Ty: ir.I32,
		Args: []ir.Value{ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2)}}
	if got := OperandWidth(add, 0); got != 32 {
		t.Errorf("add operand width = %d", got)
	}
	if got := OperandWidth(add, 5); got != 0 {
		t.Errorf("out-of-range operand width = %d, want 0", got)
	}
	phi := &ir.Instr{Op: ir.OpPhi, Ty: ir.I64}
	if got := OperandWidth(phi, 0); got != 64 {
		t.Errorf("phi operand width = %d, want result width", got)
	}
	ld := &ir.Instr{Op: ir.OpLoad, Ty: ir.F64, Elem: ir.F64,
		Args: []ir.Value{&ir.Instr{Op: ir.OpAlloca, Ty: ir.PtrTo(ir.F64), Name: "p"}}}
	if got := OperandWidth(ld, 0); got != 64 {
		t.Errorf("load pointer width = %d, want 64", got)
	}
}

func TestInjectableOperand(t *testing.T) {
	reg := &ir.Instr{Op: ir.OpAdd, Ty: ir.I32, Name: "r"}
	param := &ir.Param{Name: "p", Ty: ir.I32}
	tests := []struct {
		in   *ir.Instr
		op   int
		want bool
	}{
		{&ir.Instr{Op: ir.OpAdd, Ty: ir.I32, Args: []ir.Value{reg, ir.ConstInt(ir.I32, 1)}}, 0, true},
		{&ir.Instr{Op: ir.OpAdd, Ty: ir.I32, Args: []ir.Value{reg, ir.ConstInt(ir.I32, 1)}}, 1, false},
		{&ir.Instr{Op: ir.OpAdd, Ty: ir.I32, Args: []ir.Value{param, reg}}, 0, true},
		{&ir.Instr{Op: ir.OpPhi, Ty: ir.I32, Args: []ir.Value{reg}}, 0, true},
		{&ir.Instr{Op: ir.OpPhi, Ty: ir.I32}, 0, false},
		{&ir.Instr{Op: ir.OpAdd, Ty: ir.I32, Args: []ir.Value{reg, reg}}, 7, false},
	}
	for i, tt := range tests {
		if got := InjectableOperand(tt.in, tt.op); got != tt.want {
			t.Errorf("case %d: InjectableOperand = %v, want %v", i, got, tt.want)
		}
	}
}

func TestIsDefAndWidth(t *testing.T) {
	st := &ir.Instr{Op: ir.OpStore, Ty: ir.Void}
	if IsDef(st) {
		t.Error("store must not be a def")
	}
	ld := &ir.Instr{Op: ir.OpLoad, Ty: ir.F32}
	if !IsDef(ld) || DefWidth(ld) != 32 {
		t.Error("load def misclassified")
	}
	gep := &ir.Instr{Op: ir.OpGEP, Ty: ir.PtrTo(ir.I8)}
	if DefWidth(gep) != 64 {
		t.Error("pointer def width must be 64")
	}
}

func TestNumOperands(t *testing.T) {
	phi := &ir.Instr{Op: ir.OpPhi, Ty: ir.I32,
		Args: []ir.Value{ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2)}}
	if NumOperands(phi) != 1 {
		t.Error("phi events record exactly one operand")
	}
	st := &ir.Instr{Op: ir.OpStore, Ty: ir.Void,
		Args: []ir.Value{ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2)}}
	if NumOperands(st) != 2 {
		t.Error("store has two operands")
	}
}

func TestUseString(t *testing.T) {
	u := Use{Event: 42, Op: 1}
	if u.String() != "ev42.op1" {
		t.Errorf("Use.String() = %q", u.String())
	}
}
