package vm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
)

// cacheKind is the internal/cache kind for compiled function bodies,
// keyed by content.FuncHash. The function hash covers the printed IR
// (types, globals by name, callees by name), so an entry can only be
// replayed against a function whose code it was compiled from; decode
// still validates shapes and treats any mismatch as a miss.
const cacheKind = "vm-code-v1"

// codecVersion guards the serialized layout; bump on format changes so
// old entries read as misses and recompile.
const codecVersion = 1

type enc struct{ b []byte }

func (e *enc) u(v uint64)   { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i(v int64)    { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string) {
	e.u(uint64(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() uint64 {
	if d.err == nil {
		d.err = fmt.Errorf("vm: truncated cache entry")
	}
	return 0
}

func (d *dec) u() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return d.fail()
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) f64() uint64 {
	if len(d.b) < 8 {
		return d.fail()
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) str() string {
	n := d.u()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads a length and bounds it against the remaining input so a
// corrupt entry cannot drive a huge allocation.
func (d *dec) count(max int) int {
	n := d.u()
	if d.err != nil || n > uint64(max) {
		d.fail()
		return 0
	}
	return int(n)
}

func encodeFnCode(fc *fnCode) []byte {
	e := &enc{b: make([]byte, 0, 64+len(fc.code)*9)}
	e.u(codecVersion)
	e.u(uint64(fc.nLocals))
	e.u(uint64(fc.nParams))
	e.u(uint64(fc.maxPhi))

	e.u(uint64(len(fc.consts)))
	for _, v := range fc.consts {
		e.f64(v)
	}
	e.u(uint64(len(fc.globals)))
	for _, g := range fc.globals {
		e.str(g.Name)
	}
	e.u(uint64(len(fc.code)))
	for _, w := range fc.code {
		e.f64(w)
	}
	for _, pc := range fc.pcOfLocal {
		e.u(uint64(pc))
	}
	e.u(uint64(len(fc.blockPC)))
	for i := range fc.blockPC {
		e.u(uint64(fc.blockPC[i]))
		e.i(int64(fc.fellPC[i]))
	}
	e.u(uint64(len(fc.brTab)))
	for _, t := range fc.brTab {
		e.u(uint64(t.pc))
		e.u(uint64(t.from.Index))
	}
	e.u(uint64(len(fc.condTab)))
	for _, t := range fc.condTab {
		e.u(uint64(t.tpc))
		e.u(uint64(t.fpc))
		e.u(uint64(t.from.Index))
	}
	e.u(uint64(len(fc.phiTab)))
	for _, g := range fc.phiTab {
		e.u(uint64(len(g.phis)))
		for _, in := range g.phis {
			e.u(uint64(in.LocalID))
		}
		e.u(uint64(g.endPC))
		e.u(uint64(len(g.edges)))
		// edgeOf in insertion order: recover the pred for each edge index.
		preds := make([]*ir.Block, len(g.edges))
		for p, ei := range g.edgeOf {
			preds[ei] = p
		}
		for ei, edge := range g.edges {
			e.u(uint64(preds[ei].Index))
			e.i(int64(edge.fatalAt))
			e.u(uint64(len(edge.src)))
			for _, s := range edge.src {
				e.u(uint64(s))
			}
		}
	}
	e.u(uint64(len(fc.callTab)))
	for _, ce := range fc.callTab {
		e.u(uint64(ce.in.LocalID))
		e.str(ce.callee.Name)
		e.u(uint64(len(ce.args)))
		for _, s := range ce.args {
			e.u(uint64(s))
		}
	}
	e.u(uint64(len(fc.trapTab)))
	for _, t := range fc.trapTab {
		e.u(uint64(t.in.LocalID))
		e.u(uint64(t.kind))
	}
	for _, mt := range fc.meta {
		e.u(uint64(len(mt.argSlots)))
		for _, s := range mt.argSlots {
			e.u(uint64(s))
		}
	}
	return e.b
}

// decodeFnCode rebuilds a compiled function from a cache entry,
// re-linking instructions by LocalID, blocks by index, globals and
// callees by name. Any shape mismatch against fn fails the decode (the
// caller recompiles).
func decodeFnCode(fn *ir.Function, data []byte) (*fnCode, error) {
	d := &dec{b: data}
	if d.u() != codecVersion {
		return nil, fmt.Errorf("vm: cache entry version mismatch")
	}
	nLocals := int(d.u())
	nParams := int(d.u())
	maxPhi := int(d.u())
	if d.err != nil || nLocals != fn.NumLocals() || nParams != len(fn.Params) || len(fn.Blocks) == 0 {
		return nil, fmt.Errorf("vm: cache entry shape mismatch for %s", fn.Name)
	}
	size, _ := interp.ComputeFrameLayout(fn)
	fc := &fnCode{
		fn:        fn,
		instrs:    make([]*ir.Instr, nLocals),
		meta:      make([]instrMeta, nLocals),
		nLocals:   nLocals,
		nParams:   nParams,
		constBase: nLocals + nParams,
		frameSize: size,
		maxPhi:    maxPhi,
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.LocalID >= nLocals {
				return nil, fmt.Errorf("vm: unfinished module")
			}
			fc.instrs[in.LocalID] = in
		}
	}
	if len(fn.Entry().Instrs) == 0 {
		return nil, fmt.Errorf("vm: empty entry block")
	}
	fc.entryInstr = fn.Entry().Instrs[0]

	nConsts := d.count(len(data))
	fc.consts = make([]uint64, nConsts)
	for i := range fc.consts {
		fc.consts[i] = d.f64()
	}
	fc.globalBase = fc.constBase + nConsts
	mod := fn.Parent
	if mod == nil {
		return nil, fmt.Errorf("vm: detached function")
	}
	nGlobals := d.count(len(data))
	fc.globals = make([]*ir.Global, nGlobals)
	for i := range fc.globals {
		g := mod.Global(d.str())
		if g == nil {
			return nil, fmt.Errorf("vm: cached global not in module")
		}
		fc.globals[i] = g
	}
	fc.nSlots = fc.globalBase + nGlobals
	if fc.nSlots > maxSlots {
		return nil, fmt.Errorf("vm: cached slot count out of range")
	}

	nCode := d.count(len(data))
	fc.code = make([]uint64, nCode)
	for i := range fc.code {
		fc.code[i] = d.f64()
	}
	fc.pcOfLocal = make([]int32, nLocals)
	for i := range fc.pcOfLocal {
		fc.pcOfLocal[i] = int32(d.u())
	}
	nBlocks := d.count(len(data))
	if d.err == nil && nBlocks != len(fn.Blocks) {
		return nil, fmt.Errorf("vm: cached block count mismatch")
	}
	fc.blockPC = make([]int32, nBlocks)
	fc.fellPC = make([]int32, nBlocks)
	for i := 0; i < nBlocks; i++ {
		fc.blockPC[i] = int32(d.u())
		fc.fellPC[i] = int32(d.i())
	}
	blockAt := func(idx uint64) (*ir.Block, error) {
		if idx >= uint64(len(fn.Blocks)) {
			return nil, fmt.Errorf("vm: cached block index out of range")
		}
		return fn.Blocks[idx], nil
	}
	instrAt := func(idx uint64) (*ir.Instr, error) {
		if idx >= uint64(nLocals) || fc.instrs[idx] == nil {
			return nil, fmt.Errorf("vm: cached instruction index out of range")
		}
		return fc.instrs[idx], nil
	}

	fc.brTab = make([]brTarget, d.count(len(data)))
	for i := range fc.brTab {
		pc := int32(d.u())
		from, err := blockAt(d.u())
		if err != nil {
			return nil, err
		}
		fc.brTab[i] = brTarget{pc: pc, from: from}
	}
	fc.condTab = make([]condTarget, d.count(len(data)))
	for i := range fc.condTab {
		tpc := int32(d.u())
		fpc := int32(d.u())
		from, err := blockAt(d.u())
		if err != nil {
			return nil, err
		}
		fc.condTab[i] = condTarget{tpc: tpc, fpc: fpc, from: from}
	}
	fc.phiTab = make([]phiGroup, d.count(len(data)))
	for i := range fc.phiTab {
		g := phiGroup{edgeOf: make(map[*ir.Block]int32)}
		g.phis = make([]*ir.Instr, d.count(len(data)))
		for j := range g.phis {
			in, err := instrAt(d.u())
			if err != nil {
				return nil, err
			}
			g.phis[j] = in
		}
		g.endPC = int32(d.u())
		g.edges = make([]phiEdge, d.count(len(data)))
		for ei := range g.edges {
			pred, err := blockAt(d.u())
			if err != nil {
				return nil, err
			}
			g.edgeOf[pred] = int32(ei)
			edge := phiEdge{fatalAt: int32(d.i())}
			edge.src = make([]uint16, d.count(len(data)))
			for k := range edge.src {
				edge.src[k] = uint16(d.u())
			}
			g.edges[ei] = edge
		}
		fc.phiTab[i] = g
	}
	fc.callTab = make([]callEntry, d.count(len(data)))
	for i := range fc.callTab {
		in, err := instrAt(d.u())
		if err != nil {
			return nil, err
		}
		callee := mod.Func(d.str())
		if callee == nil {
			return nil, fmt.Errorf("vm: cached callee not in module")
		}
		ce := callEntry{in: in, callee: callee}
		ce.args = make([]uint16, d.count(len(data)))
		for k := range ce.args {
			ce.args[k] = uint16(d.u())
		}
		fc.callTab[i] = ce
	}
	fc.trapTab = make([]trapEntry, d.count(len(data)))
	for i := range fc.trapTab {
		in, err := instrAt(d.u())
		if err != nil {
			return nil, err
		}
		fc.trapTab[i] = trapEntry{in: in, kind: int(d.u())}
	}
	for i := range fc.meta {
		slots := make([]uint16, d.count(len(data)))
		for k := range slots {
			slots[k] = uint16(d.u())
		}
		fc.meta[i] = instrMeta{argSlots: slots}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("vm: trailing bytes in cache entry")
	}
	// Sanity: every slot reference must be inside the register file and
	// every pc inside the code.
	for _, pc := range fc.pcOfLocal {
		if pc < 0 || int(pc) >= nCode {
			return nil, fmt.Errorf("vm: cached pc out of range")
		}
	}
	return fc, nil
}
