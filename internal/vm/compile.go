package vm

import (
	"fmt"
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
)

// fnCompiler translates one function to bytecode: an interning pre-pass
// fixes the register-file layout (locals, params, constant pool, global
// slots), then a single emission pass over the blocks produces the code
// words and side tables.
type fnCompiler struct {
	fn *ir.Function
	fc *fnCode

	constSlot  map[uint64]int
	globalSlot map[*ir.Global]int
	offsets    map[*ir.Instr]uint64
}

func newFnCompiler(fn *ir.Function) *fnCompiler {
	return &fnCompiler{
		fn:         fn,
		constSlot:  make(map[uint64]int),
		globalSlot: make(map[*ir.Global]int),
	}
}

func (c *fnCompiler) compile() (*fnCode, error) {
	fn := c.fn
	if len(fn.Blocks) == 0 || len(fn.Entry().Instrs) == 0 {
		return nil, fmt.Errorf("%w: function %s has no body", ErrUnsupported, fn.Name)
	}
	nLocals := fn.NumLocals()
	nParams := len(fn.Params)
	size, offsets := interp.ComputeFrameLayout(fn)
	c.offsets = offsets
	fc := &fnCode{
		fn:         fn,
		instrs:     make([]*ir.Instr, nLocals),
		meta:       make([]instrMeta, nLocals),
		nLocals:    nLocals,
		nParams:    nParams,
		constBase:  nLocals + nParams,
		frameSize:  size,
		entryInstr: fn.Entry().Instrs[0],
		pcOfLocal:  make([]int32, nLocals),
		blockPC:    make([]int32, len(fn.Blocks)),
		fellPC:     make([]int32, len(fn.Blocks)),
	}
	c.fc = fc

	// Interning pre-pass: close the constant pool and global list so
	// every slot index is final before emission.
	for _, blk := range fn.Blocks {
		for _, in := range blk.Instrs {
			if in.LocalID >= nLocals {
				return nil, fmt.Errorf("%w: module not finished (LocalID out of range)", ErrUnsupported)
			}
			fc.instrs[in.LocalID] = in
			for _, a := range in.Args {
				if err := c.intern(a); err != nil {
					return nil, err
				}
			}
		}
	}
	fc.globalBase = fc.constBase + len(fc.consts)
	fc.nSlots = fc.globalBase + len(fc.globals)
	if fc.nSlots > maxSlots {
		return nil, fmt.Errorf("%w: register file needs %d slots (max %d)", ErrUnsupported, fc.nSlots, maxSlots)
	}

	for bi, blk := range fn.Blocks {
		if len(blk.Instrs) == 0 {
			return nil, fmt.Errorf("%w: empty block %s", ErrUnsupported, blk.Ident())
		}
		fc.blockPC[bi] = c.pc()
		i := 0
		if blk.Instrs[0].Op == ir.OpPhi {
			if bi == 0 {
				return nil, fmt.Errorf("%w: phi in entry block", ErrUnsupported)
			}
			n, err := c.emitPhiGroup(blk)
			if err != nil {
				return nil, err
			}
			i = n
		}
		for ; i < len(blk.Instrs); i++ {
			in := blk.Instrs[i]
			if in.Op == ir.OpPhi {
				c.emitTrap(in, trapMidBlockPhi)
				continue
			}
			fused, err := c.tryFuse(blk, i)
			if err != nil {
				return nil, err
			}
			if fused {
				i++
				continue
			}
			if err := c.emit(in); err != nil {
				return nil, err
			}
		}
		if blk.Terminator() == nil {
			fc.fellPC[bi] = c.pc()
			c.emitTrap(blk.Instrs[len(blk.Instrs)-1], trapFellThrough)
		} else {
			fc.fellPC[bi] = -1
		}
	}
	// Resolve branch targets now that every block's pc is known.
	for i := range fc.brTab {
		t := fc.brTab[i].from.Terminator()
		fc.brTab[i].pc = fc.blockPC[t.Blocks[0].Index]
	}
	for i := range fc.condTab {
		t := fc.condTab[i].from.Terminator()
		fc.condTab[i].tpc = fc.blockPC[t.Blocks[0].Index]
		fc.condTab[i].fpc = fc.blockPC[t.Blocks[1].Index]
	}
	return fc, nil
}

func (c *fnCompiler) pc() int32 { return int32(len(c.fc.code)) }

// intern reserves pool entries for constant and global operands.
func (c *fnCompiler) intern(v ir.Value) error {
	switch x := v.(type) {
	case *ir.Instr, *ir.Param:
		return nil
	case *ir.Const:
		if _, ok := c.constSlot[x.Bits]; !ok {
			c.constSlot[x.Bits] = len(c.fc.consts)
			c.fc.consts = append(c.fc.consts, x.Bits)
		}
		return nil
	case *ir.Global:
		if _, ok := c.globalSlot[x]; !ok {
			c.globalSlot[x] = len(c.fc.globals)
			c.fc.globals = append(c.fc.globals, x)
		}
		return nil
	default:
		return fmt.Errorf("%w: operand kind %T", ErrUnsupported, v)
	}
}

// slotOf returns the register-file slot holding v (pools closed).
func (c *fnCompiler) slotOf(v ir.Value) (int, error) {
	switch x := v.(type) {
	case *ir.Instr:
		if x.Parent == nil || x.Parent.Parent != c.fn {
			return 0, fmt.Errorf("%w: operand from another function", ErrUnsupported)
		}
		return x.LocalID, nil
	case *ir.Param:
		if x.Index < 0 || x.Index >= c.fc.nParams {
			return 0, fmt.Errorf("%w: parameter index out of range", ErrUnsupported)
		}
		return c.fc.nLocals + x.Index, nil
	case *ir.Const:
		return c.fc.constBase + c.constSlot[x.Bits], nil
	case *ir.Global:
		return c.fc.globalBase + c.globalSlot[x], nil
	default:
		return 0, fmt.Errorf("%w: operand kind %T", ErrUnsupported, v)
	}
}

// emitTrap emits a vopTrap for a walker runtime fatal.
func (c *fnCompiler) emitTrap(in *ir.Instr, kind int) {
	fc := c.fc
	c.notePC(in)
	aux := uint32(len(fc.trapTab))
	fc.trapTab = append(fc.trapTab, trapEntry{in: in, kind: kind})
	fc.code = append(fc.code, encWord0(vopTrap, 0, 0, 0, 0), encWord1(in.LocalID, aux))
}

func (c *fnCompiler) notePC(in *ir.Instr) {
	c.fc.pcOfLocal[in.LocalID] = c.pc()
}

func auxFits(v int64) bool { return v >= 0 && v <= math.MaxUint32 }

func (c *fnCompiler) tryFuse(blk *ir.Block, i int) (bool, error) {
	in := blk.Instrs[i]
	if i+1 >= len(blk.Instrs) {
		return false, nil
	}
	next := blk.Instrs[i+1]
	switch {
	case in.Op == ir.OpICmp && in.Pred >= ir.IEQ && in.Pred <= ir.IUGE &&
		next.Op == ir.OpCondBr && len(next.Args) == 1 && next.Args[0] == ir.Value(in):
	case in.Op == ir.OpGEP && next.Op == ir.OpLoad &&
		len(next.Args) == 1 && next.Args[0] == ir.Value(in):
	default:
		return false, nil
	}
	fusedOp := vopICmpBr
	if in.Op == ir.OpGEP {
		fusedOp = vopGEPLoad
	}
	if err := c.emitAs(fusedOp, in); err != nil {
		return false, err
	}
	// The second half keeps its plain encoding in its own slot, so a
	// snapshot resume landing on it dispatches the unfused op.
	if err := c.emit(next); err != nil {
		return false, err
	}
	return true, nil
}

// emit translates one non-phi instruction at its natural opcode.
func (c *fnCompiler) emit(in *ir.Instr) error { return c.emitAs(0, in) }

// emitAs translates in, overriding the opcode for the first half of a
// fused pair.
func (c *fnCompiler) emitAs(fusedOp vop, in *ir.Instr) error {
	fc := c.fc
	slots, err := c.argSlots(in)
	if err != nil {
		return err
	}
	fc.meta[in.LocalID] = instrMeta{argSlots: slots}
	c.notePC(in)

	var op vop
	var dst, a, b, cc int
	var aux uint32
	if !in.Type().IsVoid() {
		dst = in.LocalID
	}
	pick := func(i int) int {
		if i < len(slots) {
			return int(slots[i])
		}
		return 0
	}
	a, b, cc = pick(0), pick(1), pick(2)

	switch {
	case in.Op.IsIntArith():
		if len(in.Args) != 2 {
			return c.badArity(in)
		}
		op = intArithVop(in.Op)
		if !in.Ty.IsInt() || in.Ty.Bits <= 0 || in.Ty.Bits > 64 {
			return fmt.Errorf("%w: integer arithmetic with non-integer type", ErrUnsupported)
		}
		aux = uint32(in.Ty.Bits)
	case in.Op.IsFloatArith():
		if len(in.Args) != 2 {
			return c.badArity(in)
		}
		op = vopFArith
	case in.Op.IsMathUnary():
		if len(in.Args) != 1 {
			return c.badArity(in)
		}
		op = vopMathUnary
	case in.Op.IsMathBinary():
		if len(in.Args) != 2 {
			return c.badArity(in)
		}
		op = vopMathBinary
	case in.Op == ir.OpICmp:
		if len(in.Args) != 2 {
			return c.badArity(in)
		}
		op = vopICmp
		w := in.Args[0].Type().BitWidth()
		if w <= 0 || w > 64 {
			return fmt.Errorf("%w: icmp operand width %d", ErrUnsupported, w)
		}
		aux = uint32(in.Pred)<<8 | uint32(w)
	case in.Op == ir.OpFCmp:
		if len(in.Args) != 2 {
			return c.badArity(in)
		}
		op = vopFCmp
	case in.Op.IsConversion():
		if len(in.Args) != 1 {
			return c.badArity(in)
		}
		op = vopConvert
		aux = maskWidth(in.Ty)
	case in.Op == ir.OpAlloca:
		op = vopAlloca
		off := c.offsets[in]
		if !auxFits(int64(off)) {
			return fmt.Errorf("%w: alloca offset %d", ErrUnsupported, off)
		}
		aux = uint32(off)
	case in.Op == ir.OpLoad:
		if len(in.Args) != 1 {
			return c.badArity(in)
		}
		op = vopLoad
		sz, al := in.Elem.Size(), in.Elem.Align()
		if sz <= 0 || sz > 255 || al <= 0 || al > 255 {
			return fmt.Errorf("%w: load size %d align %d", ErrUnsupported, sz, al)
		}
		aux = uint32(al)<<16 | maskWidth(in.Ty)<<8 | uint32(sz)
	case in.Op == ir.OpStore:
		if len(in.Args) != 2 {
			return c.badArity(in)
		}
		op = vopStore
		sz, al := in.Elem.Size(), in.Elem.Align()
		if sz <= 0 || sz > 255 || al <= 0 || al > 255 {
			return fmt.Errorf("%w: store size %d align %d", ErrUnsupported, sz, al)
		}
		aux = uint32(al)<<8 | uint32(sz)
	case in.Op == ir.OpGEP:
		if len(in.Args) != 2 {
			return c.badArity(in)
		}
		op = vopGEP
		stride := in.Elem.Size()
		if !auxFits(stride) {
			return fmt.Errorf("%w: gep stride %d", ErrUnsupported, stride)
		}
		w := in.Args[1].Type().BitWidth()
		if w <= 0 || w > 64 {
			return fmt.Errorf("%w: gep index width %d", ErrUnsupported, w)
		}
		aux = uint32(stride)
		cc = w
	case in.Op == ir.OpSelect:
		if len(in.Args) != 3 {
			return c.badArity(in)
		}
		op = vopSelect
		aux = maskWidth(in.Ty)
	case in.Op == ir.OpBr:
		if len(in.Blocks) != 1 {
			return c.badArity(in)
		}
		op = vopBr
		aux = uint32(len(fc.brTab))
		fc.brTab = append(fc.brTab, brTarget{from: in.Parent})
	case in.Op == ir.OpCondBr:
		if len(in.Args) != 1 || len(in.Blocks) != 2 {
			return c.badArity(in)
		}
		op = vopCondBr
		aux = uint32(len(fc.condTab))
		fc.condTab = append(fc.condTab, condTarget{from: in.Parent})
	case in.Op == ir.OpRet:
		if len(in.Args) > 1 {
			return c.badArity(in)
		}
		op = vopRet
		if len(in.Args) == 1 {
			dst = 1
		}
	case in.Op == ir.OpCall:
		if in.Callee == nil || len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("%w: call arity mismatch", ErrUnsupported)
		}
		op = vopCall
		aux = uint32(len(fc.callTab))
		fc.callTab = append(fc.callTab, callEntry{in: in, callee: in.Callee, args: slots})
	case in.Op == ir.OpMalloc:
		if len(in.Args) != 1 {
			return c.badArity(in)
		}
		op = vopMalloc
	case in.Op == ir.OpFree:
		if len(in.Args) != 1 {
			return c.badArity(in)
		}
		op = vopFree
	case in.Op == ir.OpOutput:
		if len(in.Args) != 1 {
			return c.badArity(in)
		}
		op = vopOutput
		aux = uint32(in.Args[0].Type().BitWidth())
	case in.Op == ir.OpAbort:
		op = vopAbort
	case in.Op == ir.OpDetect:
		op = vopDetect
	default:
		// The walker raises "unimplemented opcode" only when execution
		// reaches the instruction; compilation is eager, so the whole
		// function falls back and the walker keeps that behavior.
		return fmt.Errorf("%w: opcode %s", ErrUnsupported, in.Op)
	}
	if fusedOp != 0 {
		op = fusedOp
	}
	fc.code = append(fc.code, encWord0(op, dst, a, b, cc), encWord1(in.LocalID, aux))
	return nil
}

func intArithVop(op ir.Opcode) vop {
	switch op {
	case ir.OpAdd:
		return vopAdd
	case ir.OpSub:
		return vopSub
	case ir.OpMul:
		return vopMul
	case ir.OpAnd:
		return vopAnd
	case ir.OpOr:
		return vopOr
	case ir.OpXor:
		return vopXor
	case ir.OpShl:
		return vopShl
	case ir.OpLShr:
		return vopLShr
	case ir.OpAShr:
		return vopAShr
	case ir.OpSDiv:
		return vopSDiv
	case ir.OpUDiv:
		return vopUDiv
	case ir.OpSRem:
		return vopSRem
	case ir.OpURem:
		return vopURem
	}
	return vopInvalid
}

func (c *fnCompiler) badArity(in *ir.Instr) error {
	return fmt.Errorf("%w: %s with %d operands", ErrUnsupported, in.Op, len(in.Args))
}

// maskWidth returns the result-truncation width the walker's setResult
// applies (0 when the result is not an integer or needs no mask).
func maskWidth(ty *ir.Type) uint32 {
	if ty.IsInt() && ty.Bits > 0 && ty.Bits < 64 {
		return uint32(ty.Bits)
	}
	return 0
}

// argSlots resolves every operand of in to a slot.
func (c *fnCompiler) argSlots(in *ir.Instr) ([]uint16, error) {
	slots := make([]uint16, len(in.Args))
	for i, a := range in.Args {
		s, err := c.slotOf(a)
		if err != nil {
			return nil, err
		}
		slots[i] = uint16(s)
	}
	return slots, nil
}

// emitPhiGroup compiles the leading run of phis in blk as one atomic
// group, returning the run length. The group's word pair sits at the
// first phi's slot; the remaining phis' slots hold traps that execution
// jumps over (they exist only to keep the two-words-per-instruction pc
// mapping dense).
func (c *fnCompiler) emitPhiGroup(blk *ir.Block) (int, error) {
	fc := c.fc
	n := 0
	for _, in := range blk.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		n++
	}
	phis := blk.Instrs[:n]
	g := phiGroup{
		phis:   phis,
		edgeOf: make(map[*ir.Block]int32),
	}
	// Predecessors in function block order, deduplicated, are the edges
	// execution can arrive by.
	for _, p := range c.fn.Blocks {
		t := p.Terminator()
		if t == nil {
			continue
		}
		isPred := false
		for _, s := range t.Blocks {
			if s == blk {
				isPred = true
				break
			}
		}
		if !isPred {
			continue
		}
		if _, ok := g.edgeOf[p]; ok {
			continue
		}
		// The walker scans each phi's incoming list in order and takes
		// the first match; a phi with no entry for this edge is a fatal
		// error raised only after the earlier phis retired.
		e := phiEdge{fatalAt: -1}
		for pi, in := range phis {
			found := false
			for ei, from := range in.PhiIn {
				if from == p {
					if ei >= len(in.Args) {
						return 0, fmt.Errorf("%w: phi incoming list longer than operands", ErrUnsupported)
					}
					s, err := c.slotOf(in.Args[ei])
					if err != nil {
						return 0, err
					}
					e.src = append(e.src, uint16(s))
					found = true
					break
				}
			}
			if !found {
				e.fatalAt = int32(pi)
				break
			}
		}
		g.edgeOf[p] = int32(len(g.edges))
		g.edges = append(g.edges, e)
	}
	if n > fc.maxPhi {
		fc.maxPhi = n
	}
	aux := uint32(len(fc.phiTab))
	c.notePC(phis[0])
	fc.code = append(fc.code, encWord0(vopPhiGroup, 0, 0, 0, 0), encWord1(phis[0].LocalID, aux))
	for _, in := range phis[1:] {
		c.emitTrap(in, trapMidBlockPhi)
	}
	g.endPC = c.pc()
	fc.phiTab = append(fc.phiTab, g)
	return n, nil
}
