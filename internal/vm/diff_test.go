package vm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/trace"
	"repro/internal/vm"
)

// diffResults asserts the two engines produced bit-identical outcomes:
// same outputs, exception, hang flag, event position, and (when recorded)
// the same per-event trace down to def-use links and memory metadata.
func diffResults(t *testing.T, name string, walker, vmr *interp.Result) {
	t.Helper()
	if walker.Hang != vmr.Hang {
		t.Fatalf("%s: hang mismatch: walker=%v vm=%v", name, walker.Hang, vmr.Hang)
	}
	if walker.DynInstrs != vmr.DynInstrs {
		t.Fatalf("%s: dyn instrs mismatch: walker=%d vm=%d", name, walker.DynInstrs, vmr.DynInstrs)
	}
	diffExc(t, name, walker.Exception, vmr.Exception)
	diffOutputs(t, name, walker.Outputs, vmr.Outputs)
	if (walker.Trace == nil) != (vmr.Trace == nil) {
		t.Fatalf("%s: trace presence mismatch: walker=%v vm=%v", name, walker.Trace != nil, vmr.Trace != nil)
	}
	if walker.Trace == nil {
		return
	}
	wt, vt := walker.Trace, vmr.Trace
	if len(wt.Events) != len(vt.Events) {
		t.Fatalf("%s: event count mismatch: walker=%d vm=%d", name, len(wt.Events), len(vt.Events))
	}
	for i := range wt.Events {
		diffEvent(t, name, i, &wt.Events[i], &vt.Events[i])
	}
	if len(wt.Snapshots) != len(vt.Snapshots) {
		t.Fatalf("%s: VMA snapshot count mismatch: walker=%d vm=%d", name, len(wt.Snapshots), len(vt.Snapshots))
	}
	for ver, was := range wt.Snapshots {
		vbs, ok := vt.Snapshots[ver]
		if !ok || len(was) != len(vbs) {
			t.Fatalf("%s: VMA snapshot version %d mismatch", name, ver)
		}
		for j := range was {
			if was[j] != vbs[j] {
				t.Fatalf("%s: VMA snapshot version %d entry %d: walker=%+v vm=%+v", name, ver, j, was[j], vbs[j])
			}
		}
	}
	if wt.Layout != vt.Layout {
		t.Fatalf("%s: trace layout mismatch", name)
	}
}

func diffExc(t *testing.T, name string, w, v *interp.Exception) {
	t.Helper()
	if (w == nil) != (v == nil) {
		t.Fatalf("%s: exception presence mismatch: walker=%v vm=%v", name, w, v)
	}
	if w == nil {
		return
	}
	if w.Kind != v.Kind || w.Addr != v.Addr || w.DynIdx != v.DynIdx ||
		w.Instr != v.Instr || w.Reason != v.Reason {
		t.Fatalf("%s: exception mismatch:\nwalker=%+v\nvm=%+v", name, w, v)
	}
}

func diffOutputs(t *testing.T, name string, w, v []trace.Output) {
	t.Helper()
	if len(w) != len(v) {
		t.Fatalf("%s: output count mismatch: walker=%d vm=%d", name, len(w), len(v))
	}
	for i := range w {
		if w[i] != v[i] {
			t.Fatalf("%s: output %d mismatch: walker=%+v vm=%+v", name, i, w[i], v[i])
		}
	}
}

func diffEvent(t *testing.T, name string, i int, w, v *trace.Event) {
	t.Helper()
	if w.Instr != v.Instr {
		t.Fatalf("%s: event %d instr mismatch: walker=%v(id %d) vm=%v(id %d)",
			name, i, w.Instr.Op, w.Instr.ID, v.Instr.Op, v.Instr.ID)
	}
	if len(w.Ops) != len(v.Ops) || len(w.OpDefs) != len(v.OpDefs) {
		t.Fatalf("%s: event %d (%v) operand arity mismatch: walker=%d/%d vm=%d/%d",
			name, i, w.Instr.Op, len(w.Ops), len(w.OpDefs), len(v.Ops), len(v.OpDefs))
	}
	for j := range w.Ops {
		if w.Ops[j] != v.Ops[j] {
			t.Fatalf("%s: event %d (%v) op %d mismatch: walker=%#x vm=%#x",
				name, i, w.Instr.Op, j, w.Ops[j], v.Ops[j])
		}
		if w.OpDefs[j] != v.OpDefs[j] {
			t.Fatalf("%s: event %d (%v) opdef %d mismatch: walker=%d vm=%d",
				name, i, w.Instr.Op, j, w.OpDefs[j], v.OpDefs[j])
		}
	}
	if w.Result != v.Result || w.Addr != v.Addr || w.MemDef != v.MemDef ||
		w.VMAVer != v.VMAVer || w.SP != v.SP {
		t.Fatalf("%s: event %d (%v) payload mismatch:\nwalker=%+v\nvm=%+v", name, i, w.Instr.Op, *w, *v)
	}
}

// runBoth executes the module on both engines under the same config and
// returns (walker, vm) results.
func runBoth(t *testing.T, m *ir.Module, cfg interp.Config) (*interp.Result, *interp.Result) {
	t.Helper()
	prog, err := vm.Compile(m, vm.Options{})
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	// Injection structs are mutated by the run (Applied, Original): give
	// each engine its own copy so neither sees the other's bookkeeping.
	wcfg, vcfg := cfg, cfg
	if cfg.Injection != nil {
		wi, vi := *cfg.Injection, *cfg.Injection
		wcfg.Injection, vcfg.Injection = &wi, &vi
	}
	walker, werr := interp.Run(m, wcfg)
	vmr, verr := prog.Run(vcfg)
	if (werr == nil) != (verr == nil) {
		t.Fatalf("engine error mismatch: walker=%v vm=%v", werr, verr)
	}
	if werr != nil {
		if werr.Error() != verr.Error() {
			t.Fatalf("fatal error text mismatch:\nwalker=%v\nvm=%v", werr, verr)
		}
		return nil, nil
	}
	if cfg.Injection != nil {
		if wcfg.Injection.Applied != vcfg.Injection.Applied ||
			wcfg.Injection.Original != vcfg.Injection.Original {
			t.Fatalf("injection bookkeeping mismatch: walker=%+v vm=%+v", wcfg.Injection, vcfg.Injection)
		}
	}
	return walker, vmr
}

// TestDifferentialKernels proves record-mode bit-identity on the full
// Table IV suite: every dynamic event, def-use link, memory address, VMA
// version, and output must match the walker exactly.
func TestDifferentialKernels(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			m := b.MustModule(1)
			walker, vmr := runBoth(t, m, interp.Config{Record: true})
			if walker == nil {
				t.Fatal("kernel did not run")
			}
			diffResults(t, b.Name, walker, vmr)
			if walker.Exception != nil || walker.Hang {
				t.Fatalf("golden kernel run not clean: exc=%v hang=%v", walker.Exception, walker.Hang)
			}
		})
	}
}

// edgeCasePrograms are MiniC sources that exercise interpreter corner
// semantics: traps, phi groups, recursion, allocation, float paths, and
// hangs. Differential identity must hold on the unhappy paths too.
var edgeCasePrograms = []struct {
	name string
	src  string
}{
	{"div_zero", `void main() { int a = 7; int b = 0; output(a / b); }`},
	{"div_overflow", `void main() { int a = -2147483648; int b = -1; output(a / b); }`},
	{"rem_zero", `void main() { int a = 7; int b = 0; output(a % b); }`},
	{"shift_wide", `void main() { int a = 3; int s = 40; output(a << s); output(a >> s); }`},
	{"loop_phi", `void main() {
		int s = 0;
		for (int i = 0; i < 10; i = i + 1) { s = s + i * i; }
		output(s);
	}`},
	{"nested_calls", `
		int add3(int a, int b, int c) { return a + b + c; }
		int twice(int x) { return add3(x, x, 0); }
		void main() { output(twice(add3(1, 2, 3))); }`},
	{"recursion", `
		int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
		void main() { output(fib(12)); }`},
	{"stack_overflow", `
		int down(int n) {
			double pad[128];
			pad[0] = 1.0;
			if (n == 0) { return 0; }
			return 1 + down(n - 1);
		}
		void main() { output(down(100000000)); }`},
	{"heap", `void main() {
		int *p = malloc(40);
		for (int i = 0; i < 10; i = i + 1) { p[i] = i * 3; }
		int s = 0;
		for (int i = 0; i < 10; i = i + 1) { s = s + p[i]; }
		free(p);
		output(s);
	}`},
	{"oob_load", `void main() {
		int *p = malloc(8);
		output(p[1000000000]);
	}`},
	{"null_store", `void main() {
		long n = 1073741824;
		int *p = malloc(n * 4);
		p[0] = 1;
	}`},
	{"floats", `void main() {
		double a = 1.5; double b = 2.25;
		output(a * b + a / b - b);
		output((int)(a * 100.0));
		float f = (float)a;
		output((double)f * 2.0);
	}`},
	{"float_cmp_branch", `void main() {
		double x = 0.1;
		int n = 0;
		while (x < 1.0) { x = x + 0.1; n = n + 1; }
		output(n);
	}`},
	{"hang", `void main() { int i = 0; while (i >= 0) { i = i ^ 1; } output(i); }`},
	{"abort", `void main() { int a = 5; if (a > 3) { abort(); } output(a); }`},
	{"globals", `
		int g;
		int h[4];
		void main() {
			g = 42;
			h[0] = g; h[1] = g * 2; h[2] = h[0] + h[1]; h[3] = 0 - h[2];
			output(h[2]); output(h[3]);
		}`},
	{"long_arith", `void main() {
		long a = 1000000007;
		long b = a * a;
		output(b); output(b % 97); output((int)b);
	}`},
	{"switchy_phi", `void main() {
		int acc = 0;
		for (int i = 0; i < 8; i = i + 1) {
			int v = 0;
			if (i < 3) { v = i * 10; } else { v = i - 100; }
			acc = acc + v;
		}
		output(acc);
	}`},
}

// TestDifferentialEdgeCases proves bit-identity on trap, hang, and
// unhappy-path programs, where event ordering around the raise matters.
func TestDifferentialEdgeCases(t *testing.T) {
	for _, tc := range edgeCasePrograms {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			m, err := lang.Compile(tc.name, tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cfg := interp.Config{Record: true, MaxDynInstrs: 400_000}
			walker, vmr := runBoth(t, m, cfg)
			if walker != nil {
				diffResults(t, tc.name, walker, vmr)
			}
		})
	}
}

// TestDifferentialInjection sweeps fault injections over every event of a
// few programs and asserts identical records (outcome, outputs, exception
// identity) for every single target on both engines.
func TestDifferentialInjection(t *testing.T) {
	progs := []struct {
		name string
		src  string
	}{
		{"loop", `void main() {
			int s = 1;
			for (int i = 1; i < 6; i = i + 1) { s = s * i; }
			output(s);
		}`},
		{"mem", `void main() {
			int* p = (int*)malloc(16);
			p[0] = 11; p[1] = 22; p[2] = 33; p[3] = 44;
			output(p[0] + p[1] + p[2] + p[3]);
			free(p);
		}`},
		{"calls", `
			int sq(int x) { return x * x; }
			void main() { output(sq(3) + sq(4)); }`},
	}
	rng := rand.New(rand.NewSource(42))
	for _, pc := range progs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			m, err := lang.Compile(pc.name, pc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			golden, err := interp.Run(m, interp.Config{Record: true})
			if err != nil {
				t.Fatalf("golden: %v", err)
			}
			events := golden.Trace.Events
			for ev := range events {
				w := trace.DefWidth(events[ev].Instr)
				if w == 0 {
					continue
				}
				bit := rng.Intn(w)
				cfg := interp.Config{
					MaxDynInstrs: 200_000,
					Injection:    &interp.Injection{Event: int64(ev), Bit: bit},
				}
				name := fmt.Sprintf("%s/ev%d/bit%d", pc.name, ev, bit)
				walker, vmr := runBoth(t, m, cfg)
				if walker != nil {
					diffResults(t, name, walker, vmr)
				}
			}
		})
	}
}

// TestCompileCacheRoundTrip proves a program decoded from the content-
// addressed cache behaves bit-identically to a freshly compiled one.
func TestCompileCacheRoundTrip(t *testing.T) {
	store := openTestStore(t)
	m := mustBench(t, "mm").MustModule(1)
	p1, err := vm.Compile(m, vm.Options{Cache: store})
	if err != nil {
		t.Fatalf("compile (fill): %v", err)
	}
	if p1.CacheMisses == 0 {
		t.Fatalf("first compile should miss the cache, got hits=%d misses=%d", p1.CacheHits, p1.CacheMisses)
	}
	p2, err := vm.Compile(m, vm.Options{Cache: store})
	if err != nil {
		t.Fatalf("compile (cached): %v", err)
	}
	if p2.CacheHits == 0 || p2.CacheMisses != 0 {
		t.Fatalf("second compile should hit the cache, got hits=%d misses=%d", p2.CacheHits, p2.CacheMisses)
	}
	walker, err := interp.Run(m, interp.Config{Record: true})
	if err != nil {
		t.Fatalf("walker: %v", err)
	}
	for _, p := range []*vm.Program{p1, p2} {
		got, err := p.Run(interp.Config{Record: true})
		if err != nil {
			t.Fatalf("vm run: %v", err)
		}
		diffResults(t, "mm", walker, got)
	}
}
