package vm_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/trace"
	"repro/internal/vm"
)

// fuzzSeeds are MiniC sources spanning the constructs the compiler
// supports; the fuzzer mutates them (and the injection coordinates) from
// here. Invalid mutants are rejected by the front end and skipped.
var fuzzSeeds = []string{
	`void main() { output(1 + 2 * 3); }`,
	`void main() {
		int s = 0;
		for (int i = 0; i < 20; i = i + 1) { s = s + i; }
		output(s);
	}`,
	`int f(int x) { if (x < 2) { return x; } return f(x - 1) + f(x - 2); }
	void main() { output(f(9)); }`,
	`void main() {
		int *p = malloc(32);
		p[0] = 5; p[1] = p[0] * 3;
		output(p[1] / p[0]);
		free(p);
	}`,
	`double g[8];
	void main() {
		for (int i = 0; i < 8; i = i + 1) { g[i] = (double)i * 0.5; }
		double s = 0.0;
		for (int i = 0; i < 8; i = i + 1) { s = s + g[i]; }
		output(s);
	}`,
	`void main() {
		long a = 7;
		int b = 3;
		while (b > 0) { a = a * a % 1000003; b = b - 1; }
		output(a); output((int)a << 2);
	}`,
	`void main() { int z = 0; output(10 / z); }`,
	`void main() { abort(); }`,
}

// FuzzDifferential is the engine equivalence fuzzer: any program the
// front end accepts must either compile to bytecode and produce records
// bit-identical to the walker (including under injection), or be rejected
// with a clean error — never a panic, never a divergence.
func FuzzDifferential(f *testing.F) {
	for _, src := range fuzzSeeds {
		f.Add(src, int64(3), 0)
		f.Add(src, int64(50), 17)
	}
	f.Fuzz(func(t *testing.T, src string, injEvent int64, injBit int) {
		m, err := lang.Compile("fuzz", src)
		if err != nil {
			t.Skip()
		}
		prog, err := vm.Compile(m, vm.Options{})
		if err != nil {
			// Unsupported constructs fall back to the walker; that is a
			// policy decision, not a bug. It must be a clean error, which
			// reaching this line (no panic) already proves.
			return
		}
		cfg := interp.Config{Record: true, MaxDynInstrs: 50_000}
		walker, werr := interp.Run(m, cfg)
		vmr, verr := prog.Run(cfg)
		if (werr == nil) != (verr == nil) {
			t.Fatalf("engine error mismatch: walker=%v vm=%v", werr, verr)
		}
		if werr != nil {
			if werr.Error() != verr.Error() {
				t.Fatalf("fatal error text mismatch:\nwalker=%v\nvm=%v", werr, verr)
			}
			return
		}
		diffResults(t, "fuzz", walker, vmr)

		// Replay with a fault at the (clamped) fuzzed coordinate.
		n := walker.Trace.NumEvents()
		if n == 0 {
			return
		}
		ev := injEvent % n
		if ev < 0 {
			ev = -ev % n
		}
		w := trace.DefWidth(walker.Trace.Events[ev].Instr)
		if w == 0 {
			return
		}
		bit := injBit % w
		if bit < 0 {
			bit = -bit % w
		}
		wi := &interp.Injection{Event: ev, Bit: bit}
		vi := &interp.Injection{Event: ev, Bit: bit}
		fw, werr := interp.Run(m, interp.Config{MaxDynInstrs: 50_000, Injection: wi})
		fv, verr := prog.Run(interp.Config{MaxDynInstrs: 50_000, Injection: vi})
		if (werr == nil) != (verr == nil) {
			t.Fatalf("faulty-run error mismatch: walker=%v vm=%v", werr, verr)
		}
		if werr != nil {
			return
		}
		if fw.Hang != fv.Hang || fw.DynInstrs != fv.DynInstrs {
			t.Fatalf("faulty-run outcome mismatch: walker hang=%v dyn=%d, vm hang=%v dyn=%d",
				fw.Hang, fw.DynInstrs, fv.Hang, fv.DynInstrs)
		}
		diffExc(t, "fuzz-fault", fw.Exception, fv.Exception)
		diffOutputs(t, "fuzz-fault", fw.Outputs, fv.Outputs)
	})
}
