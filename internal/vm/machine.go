package vm

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/trace"
)

// heapCap bounds a single allocation, matching the walker: real malloc
// returns NULL for absurd sizes (e.g. after a bit flip in the size
// register) and the subsequent NULL-page access faults.
const heapCap = 1 << 31

// vframe is one activation record: a flat register file (locals, params,
// constants, globals) plus the continuation state the walker tracks.
type vframe struct {
	fc   *fnCode
	regs []uint64
	defs []int64

	base    uint64
	savedSP uint64
	pc      int32
	prev    *ir.Block

	callInstr *ir.Instr
	callIdx   int64

	fnIdx int32
}

// machine executes compiled bytecode. It mirrors the walker's machine
// field-for-field where the two must agree (dyn/executed counters,
// exception/hang/fatal state, outputs, trace events).
type machine struct {
	prog    *Program
	cfg     interp.Config
	as      *mem.AddressSpace
	globals map[*ir.Global]uint64

	// fixed caches, per function, the constant-pool + global-address
	// tail of the register file; pool recycles frames so a call copies
	// only arguments.
	fixed [][]uint64
	pool  [][]*vframe

	stack []*vframe

	dyn      int64
	executed int64
	loads    int64
	stores   int64
	iters    int64
	max      int64
	record   bool
	inj      *interp.Injection
	events   []trace.Event
	outputs  []trace.Output
	memDef   map[uint64]int64

	exc       *interp.Exception
	hang      bool
	fatal     error
	converged bool
	conv      *convState

	phiVals []uint64
	phiIdx  []int64
}

func newMachine(p *Program, cfg interp.Config, as *mem.AddressSpace, globals map[*ir.Global]uint64) *machine {
	m := &machine{
		prog:    p,
		cfg:     cfg,
		as:      as,
		globals: globals,
		fixed:   make([][]uint64, len(p.fns)),
		pool:    make([][]*vframe, len(p.fns)),
		max:     cfg.MaxDynInstrs,
		record:  cfg.Record,
		inj:     cfg.Injection,
	}
	maxPhi := 0
	for _, fc := range p.fns {
		if fc.maxPhi > maxPhi {
			maxPhi = fc.maxPhi
		}
	}
	m.phiVals = make([]uint64, maxPhi)
	m.phiIdx = make([]int64, maxPhi)
	if m.record {
		m.memDef = make(map[uint64]int64)
		m.events = make([]trace.Event, 0, 1<<16)
	}
	return m
}

// Run executes the program's entry function under cfg, producing a
// Result bit-identical to interp.Run on the same module.
func (p *Program) Run(cfg interp.Config) (*interp.Result, error) {
	cfg, entry, err := interp.Normalize(p.mod, cfg)
	if err != nil {
		return nil, err
	}
	as := mem.New(cfg.Layout)
	globals, err := interp.LoadGlobals(p.mod, as)
	if err != nil {
		return nil, fmt.Errorf("interp: loading globals: %w", err)
	}
	m := newMachine(p, cfg, as, globals)
	m.pushFrame(p.fnIdx[entry], nil, nil)
	m.run()
	return m.finish()
}

// finish assembles the Result exactly as the walker does.
func (m *machine) finish() (*interp.Result, error) {
	res := &interp.Result{
		Outputs:   m.outputs,
		Exception: m.exc,
		Hang:      m.hang,
		DynInstrs: m.dyn,
		Executed:  m.executed,
		Converged: m.converged,
	}
	if m.record {
		res.Trace = &trace.Trace{
			Module:    m.prog.mod,
			Events:    m.events,
			Outputs:   m.outputs,
			Snapshots: m.as.Snapshots(),
			Layout:    m.cfg.Layout,
		}
	}
	m.flushObs()
	return res, m.fatal
}

func (m *machine) raise(kind interp.ExcKind, in *ir.Instr, addr uint64, reason string) {
	if m.exc != nil {
		return
	}
	m.exc = &interp.Exception{Kind: kind, Addr: addr, DynIdx: m.dyn, Instr: in, Reason: reason}
}

func (m *machine) raiseFatal(in *ir.Instr, format string, args ...any) {
	if m.fatal == nil {
		m.fatal = fmt.Errorf("at %s (id %d): %s", in.Op, in.ID, fmt.Sprintf(format, args...))
	}
}

// fixedFor returns the constant-pool + global-address values for fn,
// building them once per machine (global addresses are layout-dependent).
func (m *machine) fixedFor(fnIdx int32) []uint64 {
	if f := m.fixed[fnIdx]; f != nil {
		return f
	}
	fc := m.prog.fns[fnIdx]
	f := make([]uint64, len(fc.consts)+len(fc.globals))
	copy(f, fc.consts)
	for i, g := range fc.globals {
		f[len(fc.consts)+i] = m.globals[g]
	}
	m.fixed[fnIdx] = f
	return f
}

// newFrame builds a frame for fn with the fixed register tail populated.
func (m *machine) newFrame(fnIdx int32) *vframe {
	fc := m.prog.fns[fnIdx]
	if frs := m.pool[fnIdx]; len(frs) > 0 {
		fr := frs[len(frs)-1]
		m.pool[fnIdx] = frs[:len(frs)-1]
		for i := 0; i < fc.nLocals; i++ {
			fr.regs[i] = 0
			fr.defs[i] = trace.NoDef
		}
		fr.callInstr, fr.callIdx, fr.prev = nil, 0, nil
		return fr
	}
	fr := &vframe{
		fc:    fc,
		fnIdx: fnIdx,
		regs:  make([]uint64, fc.nSlots),
		defs:  make([]int64, fc.nSlots),
	}
	copy(fr.regs[fc.constBase:], m.fixedFor(fnIdx))
	for i := range fr.defs {
		fr.defs[i] = trace.NoDef
	}
	return fr
}

func (m *machine) putFrame(fr *vframe) {
	m.pool[fr.fnIdx] = append(m.pool[fr.fnIdx], fr)
}

// pushFrame enters fn with arguments copied from the caller's slots.
// Stack exhaustion raises SIGSEGV without pushing, like the walker.
func (m *machine) pushFrame(fnIdx int32, caller *vframe, argSlots []uint16) {
	fc := m.prog.fns[fnIdx]
	savedSP := m.as.SP()
	base, err := m.as.PushFrame(fc.frameSize)
	if err != nil {
		m.raise(interp.ExcSegFault, fc.entryInstr, m.as.SP()-fc.frameSize, "stack overflow")
		return
	}
	fr := m.newFrame(fnIdx)
	pb := fc.nLocals
	for i, s := range argSlots {
		fr.regs[pb+i] = caller.regs[s]
		fr.defs[pb+i] = caller.defs[s]
	}
	fr.base, fr.savedSP = base, savedSP
	fr.pc = fc.blockPC[0]
	m.stack = append(m.stack, fr)
}

// recordEvent appends the trace event for the instruction with the given
// LocalID, reading operands from their slots in Args order.
func (m *machine) recordEvent(fr *vframe, fc *fnCode, localID int32) {
	slots := fc.meta[localID].argSlots
	ops := make([]uint64, len(slots))
	defs := make([]int64, len(slots))
	for i, s := range slots {
		ops[i] = fr.regs[s]
		defs[i] = fr.defs[s]
	}
	m.events = append(m.events, trace.Event{
		Instr:  fc.instrs[localID],
		Ops:    ops,
		OpDefs: defs,
		MemDef: trace.NoDef,
	})
}

// injectBits applies the pending fault to a result being defined; the
// caller has already checked that this event is the target.
func (m *machine) injectBits(in *ir.Instr, bits uint64) uint64 {
	inj := m.inj
	width := in.Type().BitWidth()
	mask := inj.Mask
	if mask == 0 {
		if inj.Bit >= width {
			return bits
		}
		mask = 1 << uint(inj.Bit)
	}
	mask = ir.TruncateToWidth(mask, width)
	if mask == 0 {
		return bits
	}
	inj.Original = bits
	inj.Applied = true
	return bits ^ mask
}

// run is the dispatch loop. The outer loop re-reads the frame stack
// after calls and returns; the inner loop executes straight-line code of
// the top frame with everything hot in locals.
func (m *machine) run() {
	for len(m.stack) > 0 && m.exc == nil && !m.hang && m.fatal == nil {
		fr := m.stack[len(m.stack)-1]
		fc := fr.fc
		code := fc.code
		pc := fr.pc
		regs := fr.regs
		defs := fr.defs
		inner(m, fr, fc, code, regs, defs, pc)
	}
}

// inner executes until the top frame changes or the machine halts. It is
// a free function so the hot state lives in locals the compiler can keep
// in registers.
func inner(m *machine, fr *vframe, fc *fnCode, code []uint64, regs []uint64, defs []int64, pc int32) {
	iters := int64(0)
	defer func() { m.iters += iters }()
	for {
		if m.conv != nil {
			fr.pc = pc
			if m.tryConverge() {
				return
			}
		}
		iters++
		w0 := code[pc]
		w1 := code[pc+1]
		op := vop(w0 >> 56)
		dst := int(w0 >> 42 & (maxSlots - 1))
		a := int(w0 >> 28 & (maxSlots - 1))
		b := int(w0 >> 14 & (maxSlots - 1))
		cc := int(w0 & (maxSlots - 1))
		src := int32(uint32(w1 >> 32))
		aux := uint32(w1)

		// Retire: assign the dynamic index, record, check the budget.
		// vopPhiGroup and vopTrap manage retirement themselves (the
		// walker traps without retiring and retires phi groups member by
		// member).
		if op == vopPhiGroup {
			fr.pc = pc
			pc = m.stepPhiGroup(fr, fc, aux)
			if m.exc != nil || m.hang || m.fatal != nil {
				return
			}
			continue
		}
		if op == vopTrap {
			t := fc.trapTab[aux]
			switch t.kind {
			case trapFellThrough:
				m.raiseFatal(t.in, "block fell through without terminator")
			default:
				m.raiseFatal(t.in, "phi after non-phi instruction")
			}
			return
		}
		idx := m.dyn
		m.dyn++
		m.executed++
		if m.record {
			m.recordEvent(fr, fc, src)
		}
		if m.dyn > m.max {
			m.hang = true
			fr.pc = pc
			return
		}
		pc += 2 // control flow below overrides

		var r uint64
		switch op {
		case vopAdd:
			r = truncTo(regs[a]+regs[b], aux)
		case vopSub:
			r = truncTo(regs[a]-regs[b], aux)
		case vopMul:
			r = truncTo(regs[a]*regs[b], aux)
		case vopAnd:
			r = truncTo(regs[a]&regs[b], aux)
		case vopOr:
			r = truncTo(regs[a]|regs[b], aux)
		case vopXor:
			r = truncTo(regs[a]^regs[b], aux)
		case vopShl:
			x, sh := regs[a], regs[b]
			if sh >= uint64(aux) {
				r = 0
			} else {
				r = truncTo(x<<sh, aux)
			}
		case vopLShr:
			x, sh := regs[a], regs[b]
			if sh >= uint64(aux) {
				r = 0
			} else {
				r = truncTo(x>>sh, aux)
			}
		case vopAShr:
			sa := ir.SignExtend(regs[a], int(aux))
			sh := regs[b]
			if sh >= uint64(aux) {
				sh = uint64(aux - 1)
			}
			r = truncTo(uint64(sa>>sh), aux)
		case vopSDiv, vopSRem:
			w := int(aux)
			sa, sb := ir.SignExtend(regs[a], w), ir.SignExtend(regs[b], w)
			if sb == 0 {
				m.raise(interp.ExcArith, fc.instrs[src], 0, "integer division by zero")
				return
			}
			minInt := int64(-1) << uint(w-1)
			if sa == minInt && sb == -1 {
				m.raise(interp.ExcArith, fc.instrs[src], 0, "integer division overflow")
				return
			}
			if op == vopSDiv {
				r = truncTo(uint64(sa/sb), aux)
			} else {
				r = truncTo(uint64(sa%sb), aux)
			}
		case vopUDiv, vopURem:
			x, y := regs[a], regs[b]
			if y == 0 {
				m.raise(interp.ExcArith, fc.instrs[src], 0, "integer division by zero")
				return
			}
			if op == vopUDiv {
				r = truncTo(x/y, aux)
			} else {
				r = truncTo(x%y, aux)
			}
		case vopFArith:
			r = interp.FloatArithOp(fc.instrs[src], regs[a], regs[b])
		case vopMathUnary:
			r = interp.MathUnaryOp(fc.instrs[src], regs[a])
		case vopMathBinary:
			r = interp.MathBinaryOp(fc.instrs[src], regs[a], regs[b])
		case vopICmp:
			r = icmpBits(aux, regs[a], regs[b])
		case vopFCmp:
			r = interp.FCmpOp(fc.instrs[src], regs[a], regs[b])
		case vopConvert:
			r = truncTo(interp.ConvertOp(fc.instrs[src], regs[a]), aux)
		case vopAlloca:
			r = fr.base + uint64(aux)
		case vopLoad:
			var ok bool
			r, ok = m.load(fc.instrs[src], idx, regs[a], aux)
			if !ok {
				return
			}
		case vopStore:
			if !m.store(fc.instrs[src], idx, regs[a], regs[b], aux) {
				return
			}
			continue
		case vopGEP:
			r = regs[a] + uint64(aux)*uint64(ir.SignExtend(regs[b], cc))
		case vopSelect:
			if regs[a]&1 != 0 {
				r = regs[b]
			} else {
				r = regs[cc]
			}
			r = truncTo(r, aux)
		case vopBr:
			t := &fc.brTab[aux]
			fr.prev = t.from
			pc = t.pc
			continue
		case vopCondBr:
			t := &fc.condTab[aux]
			fr.prev = t.from
			if regs[a]&1 != 0 {
				pc = t.tpc
			} else {
				pc = t.fpc
			}
			continue
		case vopRet:
			var rv uint64
			rd := trace.NoDef
			if dst == 1 {
				rv, rd = regs[a], defs[a]
			}
			m.popFrame(rv, rd)
			return
		case vopCall:
			e := &fc.callTab[aux]
			fr.callInstr, fr.callIdx = e.in, idx
			fr.pc = pc
			m.pushFrame(e.fnIdx, fr, e.args)
			return
		case vopMalloc:
			size := regs[a]
			if size > heapCap {
				r = 0
			} else if addr, err := m.as.Malloc(size); err != nil {
				r = 0
			} else {
				r = addr
			}
		case vopFree:
			if err := m.as.Free(regs[a]); err != nil {
				m.raise(interp.ExcAbort, fc.instrs[src], regs[a], err.Error())
				return
			}
			continue
		case vopOutput:
			m.outputs = append(m.outputs, trace.Output{
				EventIdx: idx,
				Def:      defs[a],
				Bits:     regs[a],
				Width:    int(aux),
			})
			continue
		case vopAbort:
			m.raise(interp.ExcAbort, fc.instrs[src], 0, "abort() called")
			return
		case vopDetect:
			m.raise(interp.ExcDetected, fc.instrs[src], 0, "duplication check mismatch")
			return
		case vopICmpBr:
			// Fused compare+branch: the icmp result is set (injection
			// included), then the following condbr retires reading the
			// committed register, exactly as two walker steps would.
			r = icmpBits(aux, regs[a], regs[b])
			if m.inj != nil && !m.inj.Applied && m.inj.Event == idx {
				r = m.injectBits(fc.instrs[src], r)
			}
			regs[dst] = r
			defs[dst] = idx
			if m.record {
				m.events[idx].Result = r
			}
			// Second half: plain condbr words at pc (already advanced).
			w3 := code[pc+1]
			src2 := int32(uint32(w3 >> 32))
			aux2 := uint32(w3)
			m.dyn++
			m.executed++
			if m.record {
				m.recordEvent(fr, fc, src2)
			}
			if m.dyn > m.max {
				m.hang = true
				fr.pc = pc
				return
			}
			t := &fc.condTab[aux2]
			fr.prev = t.from
			if regs[dst]&1 != 0 {
				pc = t.tpc
			} else {
				pc = t.fpc
			}
			continue
		case vopGEPLoad:
			// Fused address+load, same two-step commit order.
			r = regs[a] + uint64(aux)*uint64(ir.SignExtend(regs[b], cc))
			if m.inj != nil && !m.inj.Applied && m.inj.Event == idx {
				r = m.injectBits(fc.instrs[src], r)
			}
			regs[dst] = r
			defs[dst] = idx
			if m.record {
				m.events[idx].Result = r
			}
			w2 := code[pc]
			w3 := code[pc+1]
			dst2 := int(w2 >> 42 & (maxSlots - 1))
			src2 := int32(uint32(w3 >> 32))
			aux2 := uint32(w3)
			idx2 := m.dyn
			m.dyn++
			m.executed++
			if m.record {
				m.recordEvent(fr, fc, src2)
			}
			if m.dyn > m.max {
				m.hang = true
				fr.pc = pc
				return
			}
			lv, ok := m.load(fc.instrs[src2], idx2, regs[dst], aux2)
			if !ok {
				return
			}
			if m.inj != nil && !m.inj.Applied && m.inj.Event == idx2 {
				lv = m.injectBits(fc.instrs[src2], lv)
			}
			regs[dst2] = lv
			defs[dst2] = idx2
			if m.record {
				m.events[idx2].Result = lv
			}
			pc += 2
			continue
		default:
			m.raiseFatal(fc.instrs[src], "unimplemented opcode")
			return
		}

		// Common result commit: truncation already applied per-op,
		// injection targets this event, trace records the final bits.
		if m.inj != nil && !m.inj.Applied && m.inj.Event == idx {
			r = m.injectBits(fc.instrs[src], r)
		}
		regs[dst] = r
		defs[dst] = idx
		if m.record {
			m.events[idx].Result = r
		}
	}
}

// truncTo masks v to width w; w == 0 or >= 64 passes through.
func truncTo(v uint64, w uint32) uint64 {
	if w == 0 || w >= 64 {
		return v
	}
	return v & (1<<w - 1)
}

func icmpBits(aux uint32, x, y uint64) uint64 {
	pred := ir.Pred(aux >> 8)
	w := int(aux & 0xff)
	var r bool
	switch pred {
	case ir.IEQ:
		r = x == y
	case ir.INE:
		r = x != y
	case ir.IULT:
		r = x < y
	case ir.IULE:
		r = x <= y
	case ir.IUGT:
		r = x > y
	case ir.IUGE:
		r = x >= y
	default:
		sx, sy := ir.SignExtend(x, w), ir.SignExtend(y, w)
		switch pred {
		case ir.ISLT:
			r = sx < sy
		case ir.ISLE:
			r = sx <= sy
		case ir.ISGT:
			r = sx > sy
		case ir.ISGE:
			r = sx >= sy
		}
	}
	if r {
		return 1
	}
	return 0
}

// stepPhiGroup retires the block's phi group atomically: all members
// read their incoming values and retire in order (hang checked per
// member), then all results commit. Returns the pc after the group.
func (m *machine) stepPhiGroup(fr *vframe, fc *fnCode, aux uint32) int32 {
	g := &fc.phiTab[aux]
	n := len(g.phis)
	ei, ok := g.edgeOf[fr.prev]
	limit := n
	var fatalAt int32 = -1
	var e *phiEdge
	if !ok {
		limit, fatalAt = 0, 0
	} else {
		e = &g.edges[ei]
		if e.fatalAt >= 0 {
			limit, fatalAt = int(e.fatalAt), e.fatalAt
		}
	}
	for i := 0; i < limit; i++ {
		sl := e.src[i]
		bits, def := fr.regs[sl], fr.defs[sl]
		idx := m.dyn
		m.dyn++
		m.executed++
		if m.record {
			m.events = append(m.events, trace.Event{
				Instr:  g.phis[i],
				Ops:    []uint64{bits},
				OpDefs: []int64{def},
				MemDef: trace.NoDef,
			})
		}
		m.phiVals[i] = bits
		m.phiIdx[i] = idx
		if m.dyn > m.max {
			m.hang = true
			return fr.pc
		}
	}
	if fatalAt >= 0 {
		prev := "%<nil>"
		if fr.prev != nil {
			prev = fr.prev.Ident()
		}
		m.raiseFatal(g.phis[fatalAt], "phi has no incoming edge from %s", prev)
		return fr.pc
	}
	for i := 0; i < n; i++ {
		in := g.phis[i]
		r := m.phiVals[i]
		idx := m.phiIdx[i]
		if m.inj != nil && !m.inj.Applied && m.inj.Event == idx {
			r = m.injectBits(in, r)
		}
		fr.regs[in.LocalID] = r
		fr.defs[in.LocalID] = idx
		if m.record {
			m.events[idx].Result = r
		}
	}
	return g.endPC
}

// popFrame returns from the top frame, depositing the return value into
// the caller's pending call register with the walker's exact semantics.
func (m *machine) popFrame(retVal uint64, retDef int64) {
	child := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	m.as.PopFrame(child.savedSP)
	m.putFrame(child)
	if len(m.stack) == 0 {
		return
	}
	fr := m.stack[len(m.stack)-1]
	in := fr.callInstr
	fr.callInstr = nil
	if in == nil || in.Ty.IsVoid() {
		fr.callIdx = 0
		return
	}
	if retDef == trace.NoDef {
		retDef = fr.callIdx
	}
	bits := retVal
	if in.Ty.IsInt() {
		bits = ir.TruncateToWidth(bits, in.Ty.Bits)
	}
	if m.inj != nil && !m.inj.Applied && m.inj.Event == fr.callIdx {
		bits = m.injectBits(in, bits)
	}
	fr.regs[in.LocalID] = bits
	fr.defs[in.LocalID] = retDef
	if m.record {
		m.events[fr.callIdx].Result = fr.regs[in.LocalID]
	}
	fr.callIdx = 0
}

func (m *machine) load(in *ir.Instr, idx int64, addr uint64, aux uint32) (uint64, bool) {
	m.loads++
	size := int64(aux & 0xff)
	mw := aux >> 8 & 0xff
	align := int64(aux >> 16 & 0xff)
	if m.record {
		ev := &m.events[idx]
		ev.Addr = addr
		ev.VMAVer = m.as.Version()
		ev.SP = m.as.SP()
	}
	if !m.alignOK(size, align, addr) {
		m.raise(interp.ExcMisaligned, in, addr, "misaligned load")
		return 0, false
	}
	raw, err := m.as.LoadFast(addr, size)
	if err != nil {
		m.raise(interp.ExcSegFault, in, addr, err.Error())
		return 0, false
	}
	v := truncTo(raw, mw)
	if m.record {
		if d, ok := m.memDef[addr]; ok {
			m.events[idx].MemDef = d
		}
	}
	return v, true
}

func (m *machine) store(in *ir.Instr, idx int64, val, addr uint64, aux uint32) bool {
	m.stores++
	size := int64(aux & 0xff)
	align := int64(aux >> 8 & 0xff)
	if m.record {
		ev := &m.events[idx]
		ev.Addr = addr
		ev.VMAVer = m.as.Version()
		ev.SP = m.as.SP()
	}
	if !m.alignOK(size, align, addr) {
		m.raise(interp.ExcMisaligned, in, addr, "misaligned store")
		return false
	}
	if err := m.as.StoreFast(addr, size, val); err != nil {
		m.raise(interp.ExcSegFault, in, addr, err.Error())
		return false
	}
	if m.record {
		for i := int64(0); i < size; i++ {
			m.memDef[addr+uint64(i)] = idx
		}
	}
	return true
}

// alignOK mirrors the walker's alignment policy on precomputed element
// size and natural alignment.
func (m *machine) alignOK(size, align int64, addr uint64) bool {
	if size <= 1 {
		return true
	}
	var req int64
	switch m.cfg.Align {
	case interp.AlignNone:
		return true
	case interp.AlignNatural:
		req = align
	default: // AlignFourByte
		req = align
		if req > 4 {
			req = 4
		}
	}
	return addr%uint64(req) == 0
}

// flushObs publishes one run's tallies (see metrics.go).
func (m *machine) flushObs() {
	noteRun(m)
}
