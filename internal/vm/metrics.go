package vm

import (
	"expvar"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Package-local tallies, mirrored to the obs registry at flush points
// and published as the "epvf_vm" expvar section (the `vm` view on
// /debug/vars). Counting is atomic so concurrent campaign workers can
// share one process.
var vmStats struct {
	compiles      atomic.Int64
	compileNanos  atomic.Int64
	codeBytes     atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	runs          atomic.Int64
	instructions  atomic.Int64
	iterations    atomic.Int64
	fallbacks     atomic.Int64
	hangs         atomic.Int64
	exceptions    atomic.Int64
	convergedRuns atomic.Int64
}

// expvarOnce guards the one-time publication of the vm section
// (expvar.Publish panics on duplicate names).
var expvarOnce sync.Once

func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("epvf_vm", expvar.Func(func() any {
			return map[string]int64{
				"compiles_total":           vmStats.compiles.Load(),
				"compile_nanos_total":      vmStats.compileNanos.Load(),
				"code_bytes_total":         vmStats.codeBytes.Load(),
				"code_cache_hits_total":    vmStats.cacheHits.Load(),
				"code_cache_misses_total":  vmStats.cacheMisses.Load(),
				"runs_total":               vmStats.runs.Load(),
				"instructions_total":       vmStats.instructions.Load(),
				"dispatch_loop_iterations": vmStats.iterations.Load(),
				"walker_fallbacks_total":   vmStats.fallbacks.Load(),
				"hangs_total":              vmStats.hangs.Load(),
				"exceptions_total":         vmStats.exceptions.Load(),
				"converged_runs_total":     vmStats.convergedRuns.Load(),
			}
		}))
	})
}

// noteCompile publishes one module compilation's tallies.
func noteCompile(p *Program) {
	publishExpvar()
	vmStats.compiles.Add(1)
	vmStats.compileNanos.Add(p.CompileNanos)
	vmStats.codeBytes.Add(p.CodeBytes)
	vmStats.cacheHits.Add(int64(p.CacheHits))
	vmStats.cacheMisses.Add(int64(p.CacheMisses))
	r := obs.Default()
	if r == nil {
		return
	}
	r.Counter("epvf_vm_compiles_total").Inc()
	r.Counter("epvf_vm_compile_nanos_total").Add(p.CompileNanos)
	r.Counter("epvf_vm_code_bytes_total").Add(p.CodeBytes)
	r.Counter("epvf_vm_code_cache_total", "outcome", "hit").Add(int64(p.CacheHits))
	r.Counter("epvf_vm_code_cache_total", "outcome", "miss").Add(int64(p.CacheMisses))
}

// NoteFallback counts one decision to run the walker instead of the VM
// (unsupported construct, compile failure, unmappable snapshot).
func NoteFallback(reason string) { noteFallbackReason(reason) }

func noteFallback(reason string) { noteFallbackReason(reason) }

func noteFallbackReason(reason string) {
	publishExpvar()
	vmStats.fallbacks.Add(1)
	if r := obs.Default(); r != nil {
		r.Counter("epvf_vm_fallbacks_total", "reason", reason).Inc()
	}
}

// noteRun publishes one run's tallies, the VM counterpart of the
// walker's epvf_interp_* flush.
func noteRun(m *machine) {
	vmStats.runs.Add(1)
	vmStats.instructions.Add(m.executed)
	vmStats.iterations.Add(m.iters)
	if m.hang {
		vmStats.hangs.Add(1)
	}
	if m.exc != nil {
		vmStats.exceptions.Add(1)
	}
	if m.converged {
		vmStats.convergedRuns.Add(1)
	}
	r := obs.Default()
	if r == nil {
		return
	}
	r.Counter("epvf_vm_runs_total").Inc()
	r.Counter("epvf_vm_instructions_total").Add(m.executed)
	r.Counter("epvf_vm_dispatch_iterations_total").Add(m.iters)
	r.Counter("epvf_vm_loads_total").Add(m.loads)
	r.Counter("epvf_vm_stores_total").Add(m.stores)
	if m.exc != nil {
		r.Counter("epvf_vm_exceptions_total", "kind", m.exc.Kind.MetricLabel()).Inc()
	}
	if m.hang {
		r.Counter("epvf_vm_hangs_total").Inc()
	}
}

// defaultStore is the package-default compile cache, mirroring
// obs.SetDefault: process setup wires a store once and every Compile
// without an explicit Options.Cache uses it.
var defaultStore atomic.Pointer[cache.Store]

// DefaultCache returns the package-default compile cache, or nil.
func DefaultCache() *cache.Store { return defaultStore.Load() }

// SetDefaultCache installs the package-default compile cache. Nil
// disables caching for Compile calls without an explicit store.
func SetDefaultCache(s *cache.Store) { defaultStore.Store(s) }
