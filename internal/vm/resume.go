package vm

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/trace"
)

// convState is the machine-side cursor over golden checkpoints,
// mirroring the walker's.
type convState struct {
	golden  *interp.Result
	next    func(after int64) *interp.State
	pending *interp.State
}

// Resume continues execution of a walker-captured snapshot on the VM.
// The state's frames are mapped onto bytecode program counters; the run
// executes on a fresh COW fork and is bit-identical to interp.Resume
// with the same options. States the bytecode cannot represent (or that
// were captured from a different module than the program was compiled
// from) report an error wrapping ErrUnsupported before any execution,
// so callers can retry on the walker; the snapshot itself is never
// mutated by either path.
func (p *Program) Resume(st *interp.State, opts interp.ResumeOptions) (*interp.Result, error) {
	if st.Module() != p.mod {
		return nil, fmt.Errorf("%w: state captured from module %q, program compiled from %q",
			ErrUnsupported, st.Module().Name, p.mod.Name)
	}
	if opts.Injection != nil && opts.Injection.Event < st.Event() {
		return nil, fmt.Errorf("interp: injection event %d precedes snapshot event %d",
			opts.Injection.Event, st.Event())
	}
	cfg := st.Config()
	cfg.Injection = opts.Injection
	if opts.MaxDynInstrs > 0 {
		cfg.MaxDynInstrs = opts.MaxDynInstrs
	}

	// Map every captured frame before touching anything mutable, so an
	// unsupported state costs nothing and the caller's fallback starts
	// from an untouched snapshot.
	frames := make([]*vframe, st.NumFrames())
	for i := range frames {
		fv := st.Frame(i)
		fnIdx, ok := p.fnIdx[fv.Fn]
		if !ok {
			return nil, fmt.Errorf("%w: frame function not in compiled program", ErrUnsupported)
		}
		fc := p.fns[fnIdx]
		pc, err := fc.pcFor(fv.Blk, fv.II)
		if err != nil {
			return nil, err
		}
		if len(fv.Regs) != fc.nLocals || len(fv.Params) != fc.nParams {
			return nil, fmt.Errorf("%w: captured frame shape mismatch", ErrUnsupported)
		}
		fr := &vframe{
			fc:        fc,
			fnIdx:     fnIdx,
			regs:      make([]uint64, fc.nSlots),
			defs:      make([]int64, fc.nSlots),
			base:      fv.Base,
			savedSP:   fv.SavedSP,
			pc:        pc,
			prev:      fv.Prev,
			callInstr: fv.CallInstr,
			callIdx:   fv.CallIdx,
		}
		copy(fr.regs, fv.Regs)
		copy(fr.defs, fv.Defs)
		for j := 0; j < fc.nParams; j++ {
			fr.regs[fc.nLocals+j] = fv.Params[j]
			fr.defs[fc.nLocals+j] = fv.ParamDefs[j]
		}
		for j := fc.constBase; j < fc.nSlots; j++ {
			fr.defs[j] = trace.NoDef
		}
		frames[i] = fr
	}

	m := newMachine(p, cfg, st.ForkMem(), st.GlobalAddrs())
	m.stack = frames
	m.dyn = st.Event()
	m.outputs = append([]trace.Output(nil), st.OutputsView()...)
	for _, fr := range frames {
		copy(fr.regs[fr.fc.constBase:], m.fixedFor(fr.fnIdx))
	}
	if c := opts.Convergence; c != nil && c.Golden != nil && c.Next != nil && !c.Golden.Hang {
		// A hung golden run has no final state to converge to, exactly
		// as in interp.Resume.
		m.conv = &convState{golden: c.Golden, next: c.Next}
	}
	m.run()
	return m.finish()
}

// tryConverge replicates the walker's convergence fast-forward: when the
// machine sits exactly on a golden checkpoint event and its full state
// equals that checkpoint, splice the golden tail and halt. The VM checks
// between dispatches; a checkpoint landing between the halves of a fused
// pair is skipped, which is safe — a deterministic machine whose state
// matched at the earlier event produces the identical future, so only
// how much of it is executed (not any record content) can differ.
func (m *machine) tryConverge() bool {
	if m.inj != nil && !m.inj.Applied {
		return false
	}
	c := m.conv
	for {
		if c.pending == nil {
			c.pending = c.next(m.dyn - 1)
			if c.pending == nil {
				m.conv = nil
				return false
			}
		}
		if c.pending.Event() >= m.dyn {
			break
		}
		c.pending = nil
	}
	if c.pending.Event() > m.dyn {
		return false
	}
	st := c.pending
	c.pending = nil
	if !m.stateEqual(st) {
		return false
	}
	m.outputs = append(m.outputs, c.golden.Outputs[len(st.OutputsView()):]...)
	m.dyn = c.golden.DynInstrs
	m.exc = c.golden.Exception
	m.converged = true
	m.stack = m.stack[:0]
	return true
}

// stateEqual reports whether the live VM is bit-identical to a
// walker-captured state. Top frames compare first, as in the walker.
func (m *machine) stateEqual(st *interp.State) bool {
	if len(m.stack) != st.NumFrames() {
		return false
	}
	for i := len(m.stack) - 1; i >= 0; i-- {
		if !frameEqualView(m.stack[i], st.Frame(i)) {
			return false
		}
	}
	return m.as.Equal(st.MemRef())
}

// frameEqualView compares a VM frame to a walker FrameView on exactly
// the fields interp's frameEqual compares; the instruction cursor is
// compared by mapping the walker position to a pc.
func frameEqualView(fr *vframe, fv interp.FrameView) bool {
	fc := fr.fc
	if fc.fn != fv.Fn || fr.prev != fv.Prev ||
		fr.base != fv.Base || fr.savedSP != fv.SavedSP ||
		fr.callInstr != fv.CallInstr || fr.callIdx != fv.CallIdx {
		return false
	}
	pc, err := fc.pcFor(fv.Blk, fv.II)
	if err != nil || pc != fr.pc {
		return false
	}
	if len(fv.Regs) != fc.nLocals || len(fv.Params) != fc.nParams {
		return false
	}
	for i := 0; i < fc.nLocals; i++ {
		if fr.regs[i] != fv.Regs[i] || fr.defs[i] != fv.Defs[i] {
			return false
		}
	}
	for i := 0; i < fc.nParams; i++ {
		if fr.regs[fc.nLocals+i] != fv.Params[i] || fr.defs[fc.nLocals+i] != fv.ParamDefs[i] {
			return false
		}
	}
	return true
}
