package vm_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/vm"
)

func openTestStore(t *testing.T) *cache.Store {
	t.Helper()
	s, err := cache.Open(cache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("cache open: %v", err)
	}
	return s
}

func mustBench(t *testing.T, name string) *bench.Benchmark {
	t.Helper()
	b, ok := bench.Get(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return b
}

// resumeBoth resumes the same walker-captured state on both engines with
// per-engine injection copies, and asserts identical results.
func resumeBoth(t *testing.T, name string, prog *vm.Program, st *interp.State, opts interp.ResumeOptions) {
	t.Helper()
	wopts, vopts := opts, opts
	if opts.Injection != nil {
		wi, vi := *opts.Injection, *opts.Injection
		wopts.Injection, vopts.Injection = &wi, &vi
	}
	walker, werr := interp.Resume(st, wopts)
	vmr, verr := prog.Resume(st, vopts)
	if (werr == nil) != (verr == nil) {
		t.Fatalf("%s: resume error mismatch: walker=%v vm=%v", name, werr, verr)
	}
	if werr != nil {
		if werr.Error() != verr.Error() {
			t.Fatalf("%s: resume error text mismatch:\nwalker=%v\nvm=%v", name, werr, verr)
		}
		return
	}
	if walker.Hang != vmr.Hang || walker.DynInstrs != vmr.DynInstrs {
		t.Fatalf("%s: resume outcome mismatch: walker hang=%v dyn=%d, vm hang=%v dyn=%d",
			name, walker.Hang, walker.DynInstrs, vmr.Hang, vmr.DynInstrs)
	}
	diffExc(t, name, walker.Exception, vmr.Exception)
	diffOutputs(t, name, walker.Outputs, vmr.Outputs)
	if opts.Injection != nil &&
		(wopts.Injection.Applied != vopts.Injection.Applied ||
			wopts.Injection.Original != vopts.Injection.Original) {
		t.Fatalf("%s: injection bookkeeping mismatch: walker=%+v vm=%+v",
			name, wopts.Injection, vopts.Injection)
	}
	// Convergence may legitimately differ in *where* it kicks in only if
	// one engine skipped a checkpoint the other took; the spliced results
	// above are identical either way, but on this deterministic workload
	// both engines check at the same event boundaries, so assert it too.
	if walker.Converged != vmr.Converged {
		t.Fatalf("%s: converged mismatch: walker=%v vm=%v", name, walker.Converged, vmr.Converged)
	}
}

// TestDifferentialResume captures golden snapshots with the walker and
// replays injected runs from them on both engines — the exact fi hot path
// — asserting bit-identical outcomes with and without convergence.
func TestDifferentialResume(t *testing.T) {
	m := mustBench(t, "mm").MustModule(1)
	cfg := interp.Config{}
	golden, err := interp.Run(m, interp.Config{Record: true})
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	total := golden.Trace.NumEvents()
	chain, err := snapshot.NewChain(m, cfg, total, snapshot.Config{Stride: total / 7})
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	prog, err := vm.Compile(m, vm.Options{})
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	scratch, err := interp.Run(m, cfg)
	if err != nil {
		t.Fatalf("scratch golden: %v", err)
	}
	conv := &interp.Convergence{Golden: scratch, Next: chain.Next}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		ev := rng.Int63n(total)
		in := golden.Trace.Events[ev].Instr
		w := trace.DefWidth(in)
		if w == 0 {
			continue
		}
		st := chain.Nearest(ev)
		if st == nil {
			t.Fatalf("no snapshot at or before event %d", ev)
		}
		inj := &interp.Injection{Event: ev, Bit: rng.Intn(w)}
		name := fmt.Sprintf("ev%d/bit%d/from%d", ev, inj.Bit, st.Event())
		resumeBoth(t, name, prog, st, interp.ResumeOptions{Injection: inj})
		resumeBoth(t, name+"/conv", prog, st, interp.ResumeOptions{Injection: inj, Convergence: conv})
	}
}

// TestResumeCrossModule proves that resuming a state captured from one
// module on a program compiled from another fails cleanly with
// ErrUnsupported — before any execution — and leaves the state usable by
// the walker afterwards (the cross-engine interleaving regression).
func TestResumeCrossModule(t *testing.T) {
	src := `void main() {
		int s = 0;
		for (int i = 0; i < 50; i = i + 1) { s = s + i; }
		output(s);
	}`
	mA, err := lang.Compile("a", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mB, err := lang.Compile("b", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ex, err := interp.NewExec(mA, interp.Config{})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	ex.Advance(40)
	st := ex.Capture()

	progB, err := vm.Compile(mB, vm.Options{})
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	if _, err := progB.Resume(st, interp.ResumeOptions{}); !errors.Is(err, vm.ErrUnsupported) {
		t.Fatalf("cross-module resume: want ErrUnsupported, got %v", err)
	}

	// The failed VM resume must not have corrupted the snapshot: both a
	// walker resume and a VM resume on the right program still replay it
	// to the correct output.
	progA, err := vm.Compile(mA, vm.Options{})
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	want, err := interp.Run(mA, interp.Config{})
	if err != nil {
		t.Fatalf("walker run: %v", err)
	}
	for i := 0; i < 2; i++ { // twice: the resumes themselves must not corrupt st either
		wres, err := interp.Resume(st, interp.ResumeOptions{})
		if err != nil {
			t.Fatalf("walker resume after failed vm resume: %v", err)
		}
		vres, err := progA.Resume(st, interp.ResumeOptions{})
		if err != nil {
			t.Fatalf("vm resume after failed vm resume: %v", err)
		}
		diffOutputs(t, "cross-module", want.Outputs, wres.Outputs)
		diffOutputs(t, "cross-module", want.Outputs, vres.Outputs)
	}
}

// TestResumeInjectionBeforeSnapshot mirrors the walker's validation: an
// injection event earlier than the capture event is a caller bug and must
// produce the same error text on both engines.
func TestResumeInjectionBeforeSnapshot(t *testing.T) {
	m, err := lang.Compile("t", `void main() {
		int s = 0;
		for (int i = 0; i < 50; i = i + 1) { s = s + i; }
		output(s);
	}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ex, err := interp.NewExec(m, interp.Config{})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	ex.Advance(40)
	st := ex.Capture()
	prog, err := vm.Compile(m, vm.Options{})
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	opts := interp.ResumeOptions{Injection: &interp.Injection{Event: st.Event() - 1}}
	_, werr := interp.Resume(st, opts)
	_, verr := prog.Resume(st, opts)
	if werr == nil || verr == nil {
		t.Fatalf("want errors from both engines, got walker=%v vm=%v", werr, verr)
	}
	if werr.Error() != verr.Error() {
		t.Fatalf("error text mismatch:\nwalker=%v\nvm=%v", werr, verr)
	}
}
