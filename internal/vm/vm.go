// Package vm compiles internal/ir modules to a compact register-based
// bytecode and executes it with a flat dispatch loop. It is a drop-in
// alternative to the frame-stack walker in internal/interp for the fault
// injection hot path: per-dynamic-instruction event records are
// bit-identical to the walker's (same trace, DDG links, crash class,
// outputs), injections hit the same program points, and a VM run can
// resume from — and converge against — walker-captured snapshots, so
// internal/snapshot chains keep working unchanged.
//
// # Bytecode format
//
// Every static instruction compiles to exactly two 64-bit words:
//
//	w0 = op(8) << 56 | dst(14) << 42 | a(14) << 28 | b(14) << 14 | c(14)
//	w1 = src(32) << 32 | aux(32)
//
// dst/a/b/c are register-file slots, src is the instruction's LocalID
// (used for trace recording and slow-path helpers), and aux is an
// op-specific immediate or side-table index. A frame's register file is a
// flat []uint64 laid out as
//
//	[0, nLocals)            SSA results, indexed by ir.Instr.LocalID
//	[nLocals, +nParams)     parameters
//	[constBase, +nConsts)   constant pool (deduplicated raw bit patterns)
//	[globalBase, +nGlobals) global addresses (resolved per machine)
//
// with a parallel []int64 of defining dynamic-event indices, so operand
// reads are uniform one-index loads for every value kind. Jump targets
// are resolved to word offsets at compile time; the common pairs
// icmp+condbr and gep+load are fused into single dispatches (the second
// instruction of a fused pair keeps its plain encoding in its own slot,
// so a snapshot resume landing between the two executes it unfused).
//
// Constructs the compiler cannot express (register files beyond 2^14
// slots, malformed blocks the walker would only fault on at runtime,
// unknown opcodes) fail compilation with an error; callers fall back to
// the walker, never crash.
package vm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/content"
	"repro/internal/ir"
)

// vop is a bytecode operation. The set is deliberately flatter than
// ir.Opcode: widths, predicates and element sizes move into aux so the
// dispatch switch stays small and each handler straight-line.
type vop uint8

const (
	vopInvalid vop = iota
	// Integer arithmetic and bitwise logic; aux = result width.
	vopAdd
	vopSub
	vopMul
	vopAnd
	vopOr
	vopXor
	vopShl
	vopLShr
	vopAShr
	// Division; aux = width; raises ExcArith like the walker.
	vopSDiv
	vopUDiv
	vopSRem
	vopURem
	// Float arithmetic and libm intrinsics; evaluated via the shared
	// interp helpers on fc.instrs[src] so rounding is identical.
	vopFArith
	vopMathUnary
	vopMathBinary
	// Comparisons; vopICmp aux = pred<<8 | operand width.
	vopICmp
	vopFCmp
	// Conversions; aux = result mask width (0 = no mask).
	vopConvert
	// Memory; vopAlloca aux = frame offset, vopLoad aux =
	// align<<16|maskWidth<<8|size, vopStore aux = align<<8|size,
	// vopGEP aux = stride and c = index width.
	vopAlloca
	vopLoad
	vopStore
	vopGEP
	// Data/control flow.
	vopSelect // aux = result mask width (0 = no mask)
	vopBr     // aux = brTab index
	vopCondBr // a = cond slot, aux = condTab index
	vopRet    // dst = 1 when a return value is present in slot a
	vopCall   // aux = callTab index
	vopPhiGroup
	// Intrinsics.
	vopMalloc
	vopFree
	vopOutput // a = value slot, aux = value width
	vopAbort
	vopDetect
	// vopTrap raises the walker's runtime fatal errors (fell-through
	// block, misplaced phi) at the exact point the walker would; aux =
	// trapTab index. It retires no event.
	vopTrap
	// Fused pairs. The handler decodes the following instruction's words
	// directly, retiring both events in walker order.
	vopICmpBr
	vopGEPLoad
)

const (
	slotBits = 14
	maxSlots = 1 << slotBits
)

func encWord0(op vop, dst, a, b, c int) uint64 {
	return uint64(op)<<56 | uint64(dst)<<42 | uint64(a)<<28 | uint64(b)<<14 | uint64(c)
}

func encWord1(src int, aux uint32) uint64 {
	return uint64(uint32(src))<<32 | uint64(aux)
}

// brTarget is a resolved unconditional branch.
type brTarget struct {
	pc   int32
	from *ir.Block
}

// condTarget is a resolved conditional branch.
type condTarget struct {
	tpc, fpc int32
	from     *ir.Block
}

// phiEdge gives, for one predecessor, the operand slot feeding each phi
// of the group. fatalAt >= 0 marks the first phi with no incoming value
// for this edge: the walker retires the earlier phis and then raises a
// fatal error, and the VM does the same.
type phiEdge struct {
	src     []uint16
	fatalAt int32
}

// phiGroup is a block's leading run of phis, retired atomically.
type phiGroup struct {
	phis   []*ir.Instr
	edgeOf map[*ir.Block]int32
	edges  []phiEdge
	endPC  int32
}

// callEntry is a resolved call site.
type callEntry struct {
	in     *ir.Instr
	callee *ir.Function
	fnIdx  int32
	args   []uint16
}

// Trap kinds (stable codes for the cache codec).
const (
	trapFellThrough = 1
	trapMidBlockPhi = 2
)

// trapEntry is a deferred walker fatal error.
type trapEntry struct {
	in   *ir.Instr
	kind int
}

// instrMeta carries per-instruction data used off the hot path.
type instrMeta struct {
	// argSlots are the operand slots in ir.Instr.Args order, for trace
	// recording.
	argSlots []uint16
}

// fnCode is one compiled function.
type fnCode struct {
	fn     *ir.Function
	code   []uint64
	instrs []*ir.Instr // by LocalID
	meta   []instrMeta // by LocalID

	consts  []uint64
	globals []*ir.Global

	nLocals, nParams int
	constBase        int
	globalBase       int
	nSlots           int
	frameSize        uint64
	maxPhi           int
	entryInstr       *ir.Instr // first instruction, for stack-overflow raises
	pcOfLocal        []int32   // by LocalID
	blockPC          []int32   // by block index: pc of first instruction
	fellPC           []int32   // by block index: fell-through trap pc, or -1
	brTab            []brTarget
	condTab          []condTarget
	phiTab           []phiGroup
	callTab          []callEntry
	trapTab          []trapEntry
}

// pcFor maps a walker frame position (block, instruction index) to a
// bytecode pc. Positions the walker can only reach transiently (inside a
// phi group) have no pc and report an unsupported-resume error.
func (fc *fnCode) pcFor(blk *ir.Block, ii int) (int32, error) {
	if blk == nil || blk.Parent != fc.fn || blk.Index >= len(fc.blockPC) {
		return 0, fmt.Errorf("%w: block not in compiled function", ErrUnsupported)
	}
	if ii == len(blk.Instrs) {
		if p := fc.fellPC[blk.Index]; p >= 0 {
			return p, nil
		}
		return 0, fmt.Errorf("%w: position past terminator", ErrUnsupported)
	}
	if ii < 0 || ii > len(blk.Instrs) {
		return 0, fmt.Errorf("%w: instruction index out of range", ErrUnsupported)
	}
	in := blk.Instrs[ii]
	if in.Op == ir.OpPhi && ii != 0 {
		return 0, fmt.Errorf("%w: position inside a phi group", ErrUnsupported)
	}
	return fc.pcOfLocal[in.LocalID], nil
}

// ErrUnsupported marks a module or captured state the VM cannot execute;
// callers should fall back to the walker.
var ErrUnsupported = errors.New("vm: unsupported")

// Options configures compilation.
type Options struct {
	// Cache, when non-nil, stores compiled function bodies under the
	// vm-code-v1 kind keyed by content.FuncHash. Nil falls back to the
	// package default store (SetDefaultCache), which may also be nil.
	Cache *cache.Store
}

// Program is a compiled module, immutable and safe for concurrent runs.
type Program struct {
	mod   *ir.Module
	fns   []*fnCode
	fnIdx map[*ir.Function]int32

	// CompileNanos is the wall time spent compiling (cache lookups
	// included); CodeBytes the bytecode footprint in bytes; CacheHits and
	// CacheMisses the per-function cache outcomes.
	CompileNanos int64
	CodeBytes    int64
	CacheHits    int
	CacheMisses  int
}

// Module returns the module the program was compiled from.
func (p *Program) Module() *ir.Module { return p.mod }

// Compile translates every function of m to bytecode. Any construct the
// VM cannot express fails the whole compilation with an error wrapping
// ErrUnsupported where appropriate; the module is untouched either way,
// so callers can fall back to the walker.
func Compile(m *ir.Module, opts Options) (*Program, error) {
	start := time.Now()
	c := opts.Cache
	if c == nil {
		c = DefaultCache()
	}
	p := &Program{mod: m, fns: make([]*fnCode, len(m.Funcs)), fnIdx: make(map[*ir.Function]int32, len(m.Funcs))}
	for i, fn := range m.Funcs {
		p.fnIdx[fn] = int32(i)
	}
	for i, fn := range m.Funcs {
		fc, hit, err := compileFn(fn, c)
		if err != nil {
			noteFallback("compile")
			return nil, fmt.Errorf("vm: compiling %s: %w", fn.Name, err)
		}
		if hit {
			p.CacheHits++
		} else {
			p.CacheMisses++
		}
		p.fns[i] = fc
		p.CodeBytes += int64(len(fc.code)) * 8
	}
	// Link: resolve callee functions to program indices.
	for _, fc := range p.fns {
		for ci := range fc.callTab {
			e := &fc.callTab[ci]
			idx, ok := p.fnIdx[e.callee]
			if !ok {
				noteFallback("compile")
				return nil, fmt.Errorf("%w: call to function outside module", ErrUnsupported)
			}
			e.fnIdx = idx
		}
	}
	p.CompileNanos = time.Since(start).Nanoseconds()
	noteCompile(p)
	return p, nil
}

// compileFn compiles one function, consulting the cache first.
func compileFn(fn *ir.Function, c *cache.Store) (fc *fnCode, cacheHit bool, err error) {
	var key string
	if c != nil {
		key = content.FuncHash(fn)
		if data, ok := c.Get(cacheKind, key); ok {
			if fc, err := decodeFnCode(fn, data); err == nil {
				return fc, true, nil
			}
			// Undecodable entries (format drift, corruption below the
			// cache's own checksum) recompile and overwrite.
		}
	}
	fc, err = newFnCompiler(fn).compile()
	if err != nil {
		return nil, false, err
	}
	if c != nil {
		_ = c.Put(cacheKind, key, encodeFnCode(fc))
	}
	return fc, false, nil
}
