#!/bin/sh
# attr-demo: run a small campaign, then render the attribution ledger
# three ways — the ranked text report, machine-readable JSON, and the
# self-contained HTML heatmap report — and assert the HTML is a
# non-empty, well-formed document.
#
# Tunables (environment): BENCH, RUNS, SHARD, OUT (default ./attr.html).
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-mm}
RUNS=${RUNS:-200}
SHARD=${SHARD:-50}
OUT=${OUT:-attr.html}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/campaign" ./cmd/campaign

"$DIR/campaign" run -bench "$BENCH" -runs "$RUNS" -shard-size "$SHARD" \
    -jitter 0 -log "$DIR/campaign.jsonl" -q

echo "== attribution report (top 10 mispredicted instructions)"
"$DIR/campaign" attr -log "$DIR/campaign.jsonl" -bench "$BENCH" -top 10

"$DIR/campaign" attr -log "$DIR/campaign.jsonl" -bench "$BENCH" -json \
    >"$DIR/attr.json"
grep -q '"crash_precision"' "$DIR/attr.json" || {
    echo "attr-demo: JSON report missing crash_precision" >&2
    exit 1
}

"$DIR/campaign" attr -log "$DIR/campaign.jsonl" -bench "$BENCH" -html "$OUT"
# The report must be a non-empty, well-formed, self-contained document.
[ -s "$OUT" ] || { echo "attr-demo: $OUT is empty" >&2; exit 1; }
head -c 15 "$OUT" | grep -q '<!DOCTYPE html' || {
    echo "attr-demo: $OUT does not start with <!DOCTYPE html>" >&2
    exit 1
}
grep -q '</html>' "$OUT" || {
    echo "attr-demo: $OUT is not closed with </html>" >&2
    exit 1
}
echo "attr-demo: wrote $OUT ($(wc -c <"$OUT") bytes)"
echo "attr-demo: OK"
