#!/bin/sh
# Tier-1 verification gate: formatting, vet, build, tests.
# Run from the repository root (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (obs + ts + alert + dashboard + campaign + dist + snapshot + mem + fi + attr + cache + inc + serve + vm + traced CLIs)"
go test -race ./internal/obs/... ./internal/obs/ts/... ./internal/obs/alert/... \
    ./internal/dashboard/... ./internal/campaign/... ./internal/dist/... \
    ./internal/snapshot/... ./internal/mem/... ./internal/fi/... ./internal/attr/... \
    ./internal/cache/... ./internal/inc/... ./internal/serve/... ./internal/vm/... \
    ./cmd/epvf/... ./cmd/campaign/...

echo "== vm differential smoke (walker vs bytecode VM, fuzz corpus seeds)"
go test ./internal/vm/ -run 'TestDifferentialKernels|TestDifferentialEdgeCases|FuzzDifferential' -count=1

echo "check: OK"
