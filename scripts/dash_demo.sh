#!/bin/sh
# dash-demo: the live telemetry surface end-to-end. A worker-less
# coordinator serves the dashboard; with no workers its shards stay
# pending and nothing merges, so the coordinator_stall alert must fire,
# degrade /healthz, and capture a pprof bundle into the content-addressed
# cache (kind obs-profile-v1). A worker then joins, the stall resolves,
# and the campaign completes. Along the way the demo asserts /dashboard
# renders well-formed HTML and /events streams at least one SSE event.
#
# Tunables (environment): BENCH, RUNS, SHARD, PORT.
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-mm}
# The campaign must outlive a few 1s alert-engine ticks once the worker
# joins, so the firing->ok transition is observable over HTTP before the
# coordinator exits; mm executes runs in well under a millisecond.
RUNS=${RUNS:-5000}
SHARD=${SHARD:-100}
PORT=${PORT:-8799}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/campaign" ./cmd/campaign

"$DIR/campaign" serve -bench "$BENCH" -runs "$RUNS" -shard-size "$SHARD" \
    -log "$DIR/merged.jsonl" -addr "127.0.0.1:$PORT" -lease-ttl 2s \
    -cache-dir "$DIR/cache" -stall-after 2s \
    >"$DIR/serve.log" 2>&1 &
SERVE=$!

BASE="http://127.0.0.1:$PORT"
i=0
until grep -q 'coordinator: serving' "$DIR/serve.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "dash-demo: coordinator failed to start:" >&2
        cat "$DIR/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== /dashboard renders"
curl -sf "$BASE/dashboard" >"$DIR/dash.html"
for want in '<!DOCTYPE html>' 'dash-campaign' 'dash-alerts' '</html>'; do
    if ! grep -qF "$want" "$DIR/dash.html"; then
        echo "dash-demo: /dashboard missing $want" >&2
        exit 1
    fi
done

echo "== /events streams"
curl -sN --max-time 3 "$BASE/events" >"$DIR/events.sse" || true
if ! grep -q '^event:' "$DIR/events.sse"; then
    echo "dash-demo: no SSE events seen on /events" >&2
    cat "$DIR/events.sse" >&2
    exit 1
fi

echo "== coordinator_stall fires with no workers"
i=0
until curl -sf "$BASE/alerts" | tr -d ' \n' | grep -q '"firing":\[[^]]*"coordinator_stall"'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "dash-demo: coordinator_stall never fired:" >&2
        curl -sf "$BASE/alerts" >&2 || true
        exit 1
    fi
    sleep 0.1
done
if ! curl -sf "$BASE/healthz" | grep -q '"degraded"'; then
    echo "dash-demo: /healthz not degraded while alert fires:" >&2
    curl -sf "$BASE/healthz" >&2 || true
    exit 1
fi

echo "== profile bundle captured into the cache"
i=0
until [ -n "$(find "$DIR/cache/epvf-cache-v1/obs-profile-v1" -type f 2>/dev/null | head -1)" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "dash-demo: no obs-profile-v1 bundle appeared under $DIR/cache" >&2
        find "$DIR/cache" -type f >&2 || true
        exit 1
    fi
    sleep 0.1
done
find "$DIR/cache/epvf-cache-v1/obs-profile-v1" -type f | head -1

echo "== worker joins, stall resolves"
"$DIR/campaign" work -coordinator "$BASE" -bench "$BENCH" -name dash-worker -q \
    >"$DIR/work.log" 2>&1 &
WORK=$!
resolved=0
i=0
while [ "$i" -lt 600 ]; do
    if curl -sf "$BASE/alerts" >"$DIR/alerts.json" 2>/dev/null; then
        if tr -d ' \n' <"$DIR/alerts.json" |
            grep -q '"rule":"coordinator_stall","from":"firing","to":"ok"'; then
            resolved=1
            break
        fi
    elif ! kill -0 "$SERVE" 2>/dev/null; then
        # Coordinator already exited: fall back to the last /alerts
        # capture for the resolve transition.
        break
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ "$resolved" -ne 1 ]; then
    if [ -s "$DIR/alerts.json" ] && tr -d ' \n' <"$DIR/alerts.json" |
        grep -q '"rule":"coordinator_stall","from":"firing","to":"ok"'; then
        resolved=1
    fi
fi
if [ "$resolved" -ne 1 ]; then
    echo "dash-demo: coordinator_stall never resolved after the worker joined:" >&2
    cat "$DIR/alerts.json" >&2 || true
    cat "$DIR/work.log" >&2 || true
    exit 1
fi

wait "$WORK"
wait "$SERVE"

echo "== merged log status"
"$DIR/campaign" status -log "$DIR/merged.jsonl"
echo "dash-demo: OK"
