#!/bin/sh
# dist-demo: a distributed campaign end-to-end on one machine — a
# coordinator and two workers over loopback HTTP. The coordinator exits
# once the merged log (bit-identical to a single-process run of the same
# plan) is complete; the demo then prints its status.
#
# Tunables (environment): BENCH, RUNS, SHARD, PORT.
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-mm}
RUNS=${RUNS:-300}
SHARD=${SHARD:-50}
PORT=${PORT:-8766}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/campaign" ./cmd/campaign

"$DIR/campaign" serve -bench "$BENCH" -runs "$RUNS" -shard-size "$SHARD" \
    -log "$DIR/merged.jsonl" -addr "127.0.0.1:$PORT" -lease-ttl 5s \
    >"$DIR/serve.log" 2>&1 &
SERVE=$!

i=0
until grep -q 'coordinator: serving' "$DIR/serve.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "dist-demo: coordinator failed to start:" >&2
        cat "$DIR/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done

"$DIR/campaign" work -coordinator "http://127.0.0.1:$PORT" -bench "$BENCH" -name worker-a &
WA=$!
"$DIR/campaign" work -coordinator "http://127.0.0.1:$PORT" -bench "$BENCH" -name worker-b &
WB=$!

wait "$WA"
wait "$WB"
wait "$SERVE"

echo "== coordinator output"
cat "$DIR/serve.log"
echo "== merged log status"
"$DIR/campaign" status -log "$DIR/merged.jsonl"
echo "dist-demo: OK"
