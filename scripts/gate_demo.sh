#!/bin/sh
# gate-demo: the incremental analysis layer (internal/inc) end-to-end.
#
#   1. Dump a real kernel's MiniC source, edit one constant inside one
#      function (nw's main: the gap penalty), and assert `epvf diff`
#      recomputes exactly that function's section — the lcg helper's
#      section is served from the cache.
#   2. Run the `epvf gate` protect -> re-verify loop twice against one
#      section cache and assert the warm run's analyses are at least 5x
#      faster than the cold run's (the walks are cached; only the cheap
#      re-profiling repeats).
#
# Tunables (environment): BENCH, SCALE, DEPTH, MIN_SPEEDUP.
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-nw}
SCALE=${SCALE:-2}
# Unbounded walk depth makes the models stage dominate, which is the
# realistic regime the section cache targets (Fig. 10: rangeprop is the
# bulk of the analysis).
DEPTH=${DEPTH:--1}
MIN_SPEEDUP=${MIN_SPEEDUP:-5}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/epvf" ./cmd/epvf

echo "== gate-demo: single-function edit ($BENCH, scale $SCALE)"
"$DIR/epvf" -bench "$BENCH" -scale "$SCALE" -print-src >"$DIR/old.c"
sed 's/int penalty = 10;/int penalty = 9;/' "$DIR/old.c" >"$DIR/new.c"
if cmp -s "$DIR/old.c" "$DIR/new.c"; then
    echo "gate-demo: edit did not apply (kernel source changed?)" >&2
    exit 1
fi
"$DIR/epvf" diff -depth "$DEPTH" -cache-dir "$DIR/cache" \
    "$DIR/old.c" "$DIR/new.c" | tee "$DIR/diff.out"
if ! grep -q '1 recomputed (\[main\])' "$DIR/diff.out"; then
    echo "gate-demo: expected exactly section main to recompute" >&2
    exit 1
fi
echo "gate-demo: edit invalidated only the edited function's section"

echo "== gate-demo: cold gate"
"$DIR/epvf" gate -src "$DIR/old.c" -depth "$DEPTH" -budget 0.24 \
    -cache-dir "$DIR/gatecache" | tee "$DIR/cold.out"
echo "== gate-demo: warm gate"
"$DIR/epvf" gate -src "$DIR/old.c" -depth "$DEPTH" -budget 0.24 \
    -cache-dir "$DIR/gatecache" | tee "$DIR/warm.out"

COLD=$(awk '/^gate: analysis seconds/{print $4}' "$DIR/cold.out")
WARM=$(awk '/^gate: analysis seconds/{print $4}' "$DIR/warm.out")
if ! grep -q ' 0 recomputed' "$DIR/warm.out"; then
    echo "gate-demo: warm gate recomputed sections it should have reused" >&2
    exit 1
fi
awk -v c="$COLD" -v w="$WARM" -v min="$MIN_SPEEDUP" 'BEGIN {
    if (w <= 0) w = 0.001
    r = c / w
    printf "gate-demo: cold %.3fs, warm %.3fs -> %.1fx speedup (need >= %sx)\n", c, w, r, min
    exit (r >= min) ? 0 : 1
}' || { echo "gate-demo: warm gate not fast enough" >&2; exit 1; }

echo "gate-demo: OK"
