#!/bin/sh
# serve-demo: the always-on analysis daemon end-to-end on one machine.
# Starts `epvf serve` with a disk cache, runs the same analysis against
# it cold (computed) and warm (summary-cache), and asserts:
#
#   1. both daemon reports are byte-identical to a local `epvf` run,
#   2. /metrics shows the cache-hit counter increasing across the runs,
#   3. the warm request is at least 10x faster than the cold one.
#
# Tunables (environment): BENCH, SCALE.
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-mm}
SCALE=${SCALE:-3}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/epvf" ./cmd/epvf

"$DIR/epvf" serve -addr 127.0.0.1:0 -cache-dir "$DIR/cache" \
    >"$DIR/serve.log" 2>&1 &
SERVE=$!
trap 'kill "$SERVE" 2>/dev/null || true; rm -rf "$DIR"' EXIT

i=0
until grep -q 'listening on' "$DIR/serve.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-demo: daemon failed to start:" >&2
        cat "$DIR/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(sed -n 's|.*listening on http://||p' "$DIR/serve.log" | head -1)
echo "serve-demo: daemon at http://$ADDR (cache under $DIR/cache)"

# Millisecond wall clock (GNU date).
now_ms() { echo $(($(date +%s%N) / 1000000)); }

hits() {
    curl -sf "http://$ADDR/metrics" |
        sed -n 's|^epvf_cache_hits_total{kind="summary",tier="[^"]*"} ||p' |
        awk '{s += $1} END {print s + 0}'
}

echo "== local analysis (reference output)"
"$DIR/epvf" -bench "$BENCH" -scale "$SCALE" -timing=false -classes -per-func \
    >"$DIR/local.txt"

echo "== cold request (daemon computes and fills the cache)"
HITS0=$(hits)
T0=$(now_ms)
"$DIR/epvf" -bench "$BENCH" -scale "$SCALE" -timing=false -classes -per-func \
    -server "$ADDR" >"$DIR/cold.txt"
T1=$(now_ms)

echo "== warm request (served from the content-addressed cache)"
"$DIR/epvf" -bench "$BENCH" -scale "$SCALE" -timing=false -classes -per-func \
    -server "$ADDR" >"$DIR/warm.txt"
T2=$(now_ms)
HITS1=$(hits)

cmp "$DIR/local.txt" "$DIR/cold.txt" || {
    echo "serve-demo: cold daemon report differs from local run" >&2
    exit 1
}
cmp "$DIR/local.txt" "$DIR/warm.txt" || {
    echo "serve-demo: warm daemon report differs from local run" >&2
    exit 1
}
echo "serve-demo: daemon reports byte-identical to the local run"

if [ "$HITS1" -le "$HITS0" ]; then
    echo "serve-demo: cache hits did not increase ($HITS0 -> $HITS1)" >&2
    curl -sf "http://$ADDR/metrics" | grep epvf_cache || true
    exit 1
fi
echo "serve-demo: summary cache hits $HITS0 -> $HITS1"

COLD=$((T1 - T0))
WARM=$((T2 - T1))
echo "serve-demo: cold ${COLD}ms, warm ${WARM}ms"
if [ $((WARM * 10)) -gt "$COLD" ]; then
    echo "serve-demo: warm request not >=10x faster than cold" >&2
    exit 1
fi

kill "$SERVE"
wait "$SERVE" 2>/dev/null || true
echo "== daemon log"
cat "$DIR/serve.log"
echo "serve-demo: OK"
