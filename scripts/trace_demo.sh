#!/bin/sh
# trace-demo: cross-process correlated tracing end-to-end on one machine.
# Four processes touch one campaign — the analysis daemon (`epvf serve`),
# a coordinator (`campaign serve`), a worker (`campaign work`) and the
# publishing CLI (`campaign run -server`) — and every span they emit
# must land in ONE trace, because all of them derive the same trace and
# span IDs from the plan alone. The demo asserts:
#
#   1. `campaign trace` renders exactly one span tree, rooted, with no
#      orphans, spanning the coordinator, worker and daemon processes,
#   2. the daemon's always-on flight recorder serves a non-empty
#      /debug/flight dump,
#   3. `campaign trace -html` writes a well-formed HTML timeline.
#
# Tunables (environment): BENCH, RUNS, SHARD, PORT.
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-mm}
RUNS=${RUNS:-300}
SHARD=${SHARD:-50}
PORT=${PORT:-8767}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/campaign" ./cmd/campaign
go build -o "$DIR/epvf" ./cmd/epvf

wait_for() { # wait_for <pattern> <logfile> <what>
    i=0
    until grep -q "$1" "$2" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "trace-demo: $3 failed to start:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# 1. The analysis daemon (its own process, proc label "epvf-serve").
"$DIR/epvf" serve -addr 127.0.0.1:0 >"$DIR/daemon.log" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -rf "$DIR"' EXIT
wait_for 'listening on' "$DIR/daemon.log" daemon
DADDR=$(sed -n 's|.*listening on http://||p' "$DIR/daemon.log" | head -1)
echo "trace-demo: daemon at http://$DADDR"

# 2. Coordinator plus one worker over loopback HTTP.
"$DIR/campaign" serve -bench "$BENCH" -runs "$RUNS" -shard-size "$SHARD" \
    -log "$DIR/merged.jsonl" -addr "127.0.0.1:$PORT" -lease-ttl 5s \
    >"$DIR/serve.log" 2>&1 &
SERVE=$!
wait_for 'coordinator: serving' "$DIR/serve.log" coordinator

"$DIR/campaign" work -coordinator "http://127.0.0.1:$PORT" -bench "$BENCH" -name worker-a
wait "$SERVE"

# 3. Publish the merged log to the daemon under the same plan: the
# daemon's handling spans join the campaign trace through the client's
# Traceparent header and are stitched back into the log.
"$DIR/campaign" run -bench "$BENCH" -runs "$RUNS" -shard-size "$SHARD" \
    -log "$DIR/merged.jsonl" -server "$DADDR" -q

# 4. The daemon's always-on flight recorder has something to say.
curl -fsS "http://$DADDR/debug/flight?format=text" >"$DIR/flight.txt"
if ! grep -q 'flight recorder:' "$DIR/flight.txt" || grep -q '0 spans recorded' "$DIR/flight.txt"; then
    echo "trace-demo: /debug/flight dump empty or malformed:" >&2
    cat "$DIR/flight.txt" >&2
    exit 1
fi
echo "== daemon /debug/flight"
head -3 "$DIR/flight.txt"

# 5. One connected span tree across all processes.
"$DIR/campaign" trace -log "$DIR/merged.jsonl" >"$DIR/trace.txt"
headers=$(grep -c '^trace ' "$DIR/trace.txt")
if [ "$headers" -ne 1 ]; then
    echo "trace-demo: expected one span tree, got $headers:" >&2
    grep '^trace ' "$DIR/trace.txt" >&2
    exit 1
fi
header=$(grep '^trace ' "$DIR/trace.txt")
echo "== $header"
for proc in coordinator worker-a epvf-serve; do
    case "$header" in
    *"$proc"*) ;;
    *)
        echo "trace-demo: process $proc missing from the trace: $header" >&2
        exit 1
        ;;
    esac
done
case "$header" in
*" 0 orphans"*) ;;
*)
    echo "trace-demo: trace has orphaned spans: $header" >&2
    cat "$DIR/trace.txt" >&2
    exit 1
    ;;
esac

# 6. The HTML timeline renders.
"$DIR/campaign" trace -log "$DIR/merged.jsonl" -html "$DIR/trace.html"
if ! grep -q '<html' "$DIR/trace.html" || ! grep -q 'class="tl"' "$DIR/trace.html"; then
    echo "trace-demo: HTML timeline malformed" >&2
    exit 1
fi
echo "trace-demo: OK"
